"""Verifying that timestamps encode the order (Equation 1).

The checker exhaustively compares every pair of messages against the
ground-truth poset ``(M, ↦)`` and reports the first (or all)
violations.  It distinguishes the two halves of Equation (1):

* **consistency** — ``m1 ↦ m2 ⇒ ts(m1) < ts(m2)``;
* **completeness** — ``ts(m1) < ts(m2) ⇒ m1 ↦ m2``.

The online and offline clocks must pass both; the Lamport baseline
passes only the first, which the tests assert explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, List, Optional, TypeVar

from repro.clocks.base import MessageTimestamper, TimestampAssignment
from repro.core.poset import Poset
from repro.exceptions import EncodingViolationError
from repro.order.message_order import message_poset
from repro.sim.computation import SyncComputation, SyncMessage

TimestampT = TypeVar("TimestampT")


@dataclass(frozen=True)
class Violation(Generic[TimestampT]):
    """One pair of messages on which the encoding disagrees with ``↦``."""

    kind: str  # "consistency" or "completeness"
    first: SyncMessage
    second: SyncMessage
    first_timestamp: TimestampT
    second_timestamp: TimestampT

    def describe(self) -> str:
        if self.kind == "consistency":
            relation = "m1 ↦ m2 but not ts(m1) < ts(m2)"
        else:
            relation = "ts(m1) < ts(m2) but not m1 ↦ m2"
        return (
            f"{self.kind} violation ({relation}): "
            f"{self.first.name}={self.first_timestamp!r}, "
            f"{self.second.name}={self.second_timestamp!r}"
        )


@dataclass
class CheckReport(Generic[TimestampT]):
    """Outcome of checking one assignment against the ground truth."""

    computation: SyncComputation
    consistency_violations: List[Violation]
    completeness_violations: List[Violation]
    ordered_pairs: int
    concurrent_pairs: int

    @property
    def consistent(self) -> bool:
        return not self.consistency_violations

    @property
    def characterizes(self) -> bool:
        return self.consistent and not self.completeness_violations

    def raise_on_violation(self) -> None:
        for violation in (
            self.consistency_violations + self.completeness_violations
        ):
            raise EncodingViolationError(
                violation.describe(),
                pair=(violation.first, violation.second),
            )


def check_encoding(
    clock: MessageTimestamper,
    assignment: TimestampAssignment,
    poset: Optional[Poset] = None,
    stop_at_first: bool = False,
) -> CheckReport:
    """Exhaustive pairwise check of Equation (1) for one assignment."""
    computation = assignment.computation
    if poset is None:
        poset = message_poset(computation)

    consistency: List[Violation] = []
    completeness: List[Violation] = []
    ordered = 0
    concurrent = 0
    messages = computation.messages

    # Ground-truth lookups: one bit probe per direction when the poset
    # exposes its bitmask rows and covers every message, else the
    # generic element API (which also preserves the unknown-element
    # PosetError behaviour for partial posets).
    rows_accessor = getattr(poset, "above_bit_rows", None)
    positions: "List[int] | None" = None
    if rows_accessor is not None:
        index = {element: i for i, element in enumerate(poset.elements)}
        if all(m in index for m in messages):
            above_rows = rows_accessor()
            positions = [index[m] for m in messages]

    for i, m1 in enumerate(messages):
        for j in range(i + 1, len(messages)):
            m2 = messages[j]
            if positions is not None:
                pi = positions[i]
                pj = positions[j]
                truth_forward = (above_rows[pi] >> pj) & 1 == 1
                truth_backward = (above_rows[pj] >> pi) & 1 == 1
            else:
                truth_forward = poset.less(m1, m2)
                truth_backward = poset.less(m2, m1)
            for first, second, truth in (
                (m1, m2, truth_forward),
                (m2, m1, truth_backward),
            ):
                claim = clock.precedes(
                    assignment.of(first), assignment.of(second)
                )
                if truth:
                    ordered += 1
                    if not claim:
                        consistency.append(
                            Violation(
                                "consistency",
                                first,
                                second,
                                assignment.of(first),
                                assignment.of(second),
                            )
                        )
                        if stop_at_first:
                            return _report(
                                computation,
                                consistency,
                                completeness,
                                ordered,
                                concurrent,
                            )
                elif claim:
                    completeness.append(
                        Violation(
                            "completeness",
                            first,
                            second,
                            assignment.of(first),
                            assignment.of(second),
                        )
                    )
                    if stop_at_first:
                        return _report(
                            computation,
                            consistency,
                            completeness,
                            ordered,
                            concurrent,
                        )
            if not truth_forward and not truth_backward and m1 != m2:
                concurrent += 1
    return _report(
        computation, consistency, completeness, ordered, concurrent
    )


def _report(
    computation, consistency, completeness, ordered, concurrent
) -> CheckReport:
    return CheckReport(
        computation=computation,
        consistency_violations=consistency,
        completeness_violations=completeness,
        ordered_pairs=ordered,
        concurrent_pairs=concurrent,
    )


def assert_characterizes(
    clock: MessageTimestamper,
    computation: SyncComputation,
    poset: Optional[Poset] = None,
) -> CheckReport:
    """Timestamp ``computation`` with ``clock`` and demand Equation (1)."""
    assignment = clock.timestamp_computation(computation)
    report = check_encoding(clock, assignment, poset=poset)
    report.raise_on_violation()
    return report
