"""Consistent cuts of synchronous computations.

A *cut* keeps a prefix of every process's message projection.  Because a
synchronous message is one atomic event on two timelines, a cut is
**consistent** exactly when (a) both participants agree on whether each
message is kept, and (b) the kept set is a down-set of ``(M, ↦)``.
Consistent cuts are in bijection with the ideals of the message poset
(:mod:`repro.core.ideals`).

The practical constructor is :func:`snapshot_at`: with characterizing
vector timestamps, ``{m : v(m) ≤ frontier}`` is always a consistent cut
— the vector-frontier snapshot used by checkpointing.  Recovery's
surviving set (:mod:`repro.apps.recovery`) is also a consistent cut,
which the integration tests assert.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Tuple

from repro.clocks.base import TimestampAssignment
from repro.core.poset import Poset, iter_bits
from repro.core.vector import VectorTimestamp
from repro.exceptions import SimulationError
from repro.sim.computation import Process, SyncComputation, SyncMessage

#: Per-computation projection indices, cached weakly: for each process,
#: its projection as a ``{message: position}`` map plus the projection's
#: global message indices in order.  Computed once per computation so
#: membership tests are O(1) dict probes instead of list slices with a
#: linear ``in`` per message (the old ``Cut._keeps`` hot spot).
_PROJECTION_CACHE: "weakref.WeakKeyDictionary[SyncComputation, Dict[Process, Tuple[Dict[SyncMessage, int], List[int]]]]" = (  # noqa: E501
    weakref.WeakKeyDictionary()
)


def _projection_index(
    computation: SyncComputation,
) -> Dict[Process, Tuple[Dict[SyncMessage, int], List[int]]]:
    cached = _PROJECTION_CACHE.get(computation)
    if cached is None:
        cached = {}
        for process in computation.processes:
            projection = computation.process_messages(process)
            cached[process] = (
                {message: k for k, message in enumerate(projection)},
                [message.index for message in projection],
            )
        _PROJECTION_CACHE[computation] = cached
    return cached


@dataclass(frozen=True)
class Cut:
    """Per-process prefix lengths (how many messages each process keeps)."""

    kept: Mapping[Process, int]

    def messages(self, computation: SyncComputation) -> FrozenSet[SyncMessage]:
        """Messages kept by *both* of their participants."""
        all_messages = computation.messages
        return frozenset(
            all_messages[b]
            for b in iter_bits(self.message_mask(computation))
        )

    def message_mask(self, computation: SyncComputation) -> int:
        """The kept set as a bitmask over global message indices.

        A message survives exactly when *no* participant drops it, so
        the mask is the complement of the union of every process's
        dropped suffix — O(messages) bit sets, and directly usable as
        an ideal mask against ``message_poset(computation)`` (whose
        insertion positions are the global indices).
        """
        index = _projection_index(computation)
        excluded = 0
        for process, (_, global_indices) in index.items():
            keep = self.kept.get(process, 0)
            for gi in global_indices[keep:]:
                excluded |= 1 << gi
        return ((1 << len(computation.messages)) - 1) & ~excluded

    def _keeps(
        self,
        computation: SyncComputation,
        process: Process,
        message: SyncMessage,
    ) -> bool:
        positions, _ = _projection_index(computation)[process]
        position = positions.get(message)
        return (
            position is not None
            and position < self.kept.get(process, 0)
        )

    def validate_against(self, computation: SyncComputation) -> None:
        for process, keep in self.kept.items():
            projection = computation.process_messages(process)
            if not 0 <= keep <= len(projection):
                raise SimulationError(
                    f"cut keeps {keep} messages of {process!r}, which has "
                    f"only {len(projection)}"
                )


def cut_from_messages(
    computation: SyncComputation, messages: FrozenSet[SyncMessage]
) -> Cut:
    """The per-process prefix lengths matching a message set.

    Raises :class:`SimulationError` when the set is not prefix-shaped on
    some process (such a set cannot be any cut).
    """
    kept: Dict[Process, int] = {}
    for process in computation.processes:
        projection = computation.process_messages(process)
        count = 0
        for message in projection:
            if message in messages:
                count += 1
            else:
                break
        # Everything after the first excluded message must be excluded.
        if any(m in messages for m in projection[count:]):
            raise SimulationError(
                f"message set is not a prefix on {process!r}"
            )
        kept[process] = count
    return Cut(kept)


def mask_is_consistent(
    computation: SyncComputation, poset: Poset, mask: int
) -> bool:
    """Down-set test for a kept-message bitmask, on the kernel's rows.

    ``poset`` must be the message poset of ``computation`` (insertion
    positions equal to global message indices, as
    :func:`repro.order.message_order.message_poset` guarantees); the
    check is then one closed-row AND per kept message.
    """
    from repro.core.lattice_kernel import is_ideal_mask

    return is_ideal_mask(poset, mask)


def is_consistent(
    computation: SyncComputation,
    cut: Cut,
    poset: Poset = None,
) -> bool:
    """Check the two consistency conditions of the module docstring."""
    from repro.order.message_order import message_poset

    cut.validate_against(computation)
    if poset is None:
        poset = message_poset(computation)

    # (a) participants agree: a kept message must be within *both*
    # participants' prefixes — each process's kept prefix, as a mask of
    # global indices, must be contained in the agreed mask.
    agreed_mask = cut.message_mask(computation)
    index = _projection_index(computation)
    for process, (_, global_indices) in index.items():
        keep = cut.kept.get(process, 0)
        prefix = 0
        for gi in global_indices[:keep]:
            prefix |= 1 << gi
        if prefix & ~agreed_mask:
            return False

    # (b) down-set under ↦: one closed-row AND per kept message when
    # the poset's insertion positions are the global message indices
    # (always true for ``message_poset``); otherwise the portable
    # frozenset walk.
    if (
        getattr(poset, "below_bit_rows", None) is not None
        and poset.elements == computation.messages
    ):
        return mask_is_consistent(computation, poset, agreed_mask)
    agreed = cut.messages(computation)
    for message in agreed:
        if not poset.strictly_below(message) <= agreed:
            return False
    return True


def snapshot_at(
    computation: SyncComputation,
    assignment: TimestampAssignment,
    frontier: VectorTimestamp,
) -> Cut:
    """The consistent cut ``{m : v(m) <= frontier}``.

    With characterizing timestamps this set is a down-set (if
    ``m' ↦ m`` and ``v(m) <= frontier`` then ``v(m') < v(m)``), and the
    per-process monotonicity of timestamps makes it prefix-shaped — so
    the result is always consistent, which the property tests verify.
    """
    included = frozenset(
        message
        for message in computation.messages
        if assignment.of(message) <= frontier
    )
    return cut_from_messages(computation, included)


def subcomputation(
    computation: SyncComputation, cut: Cut
) -> SyncComputation:
    """The computation restricted to a consistent cut's messages.

    Because a consistent cut is causally closed and prefix-shaped, the
    kept messages — re-indexed in their original execution order — form
    a valid synchronous computation over the same topology whose message
    poset is exactly the restriction of the original's.  This is the
    "replay from checkpoint" artefact: recovery restarts from the cut's
    sub-computation.
    """
    kept = cut.messages(computation)
    ordered = [m for m in computation.messages if m in kept]
    rebuilt = [
        SyncMessage(
            index=position,
            sender=message.sender,
            receiver=message.receiver,
            name=message.name,
        )
        for position, message in enumerate(ordered)
    ]
    return SyncComputation(computation.topology, rebuilt)


def cut_of_everything(computation: SyncComputation) -> Cut:
    """The full cut (every message kept)."""
    return Cut(
        {
            process: len(computation.process_messages(process))
            for process in computation.processes
        }
    )
