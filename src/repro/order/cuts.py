"""Consistent cuts of synchronous computations.

A *cut* keeps a prefix of every process's message projection.  Because a
synchronous message is one atomic event on two timelines, a cut is
**consistent** exactly when (a) both participants agree on whether each
message is kept, and (b) the kept set is a down-set of ``(M, ↦)``.
Consistent cuts are in bijection with the ideals of the message poset
(:mod:`repro.core.ideals`).

The practical constructor is :func:`snapshot_at`: with characterizing
vector timestamps, ``{m : v(m) ≤ frontier}`` is always a consistent cut
— the vector-frontier snapshot used by checkpointing.  Recovery's
surviving set (:mod:`repro.apps.recovery`) is also a consistent cut,
which the integration tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Set

from repro.clocks.base import TimestampAssignment
from repro.core.poset import Poset
from repro.core.vector import VectorTimestamp
from repro.exceptions import SimulationError
from repro.sim.computation import Process, SyncComputation, SyncMessage


@dataclass(frozen=True)
class Cut:
    """Per-process prefix lengths (how many messages each process keeps)."""

    kept: Mapping[Process, int]

    def messages(self, computation: SyncComputation) -> FrozenSet[SyncMessage]:
        """Messages kept by *both* of their participants."""
        included: Set[SyncMessage] = set()
        for message in computation.messages:
            if self._keeps(computation, message.sender, message) and (
                self._keeps(computation, message.receiver, message)
            ):
                included.add(message)
        return frozenset(included)

    def _keeps(
        self,
        computation: SyncComputation,
        process: Process,
        message: SyncMessage,
    ) -> bool:
        projection = computation.process_messages(process)
        keep = self.kept.get(process, 0)
        return message in projection[:keep]

    def validate_against(self, computation: SyncComputation) -> None:
        for process, keep in self.kept.items():
            projection = computation.process_messages(process)
            if not 0 <= keep <= len(projection):
                raise SimulationError(
                    f"cut keeps {keep} messages of {process!r}, which has "
                    f"only {len(projection)}"
                )


def cut_from_messages(
    computation: SyncComputation, messages: FrozenSet[SyncMessage]
) -> Cut:
    """The per-process prefix lengths matching a message set.

    Raises :class:`SimulationError` when the set is not prefix-shaped on
    some process (such a set cannot be any cut).
    """
    kept: Dict[Process, int] = {}
    for process in computation.processes:
        projection = computation.process_messages(process)
        count = 0
        for message in projection:
            if message in messages:
                count += 1
            else:
                break
        # Everything after the first excluded message must be excluded.
        if any(m in messages for m in projection[count:]):
            raise SimulationError(
                f"message set is not a prefix on {process!r}"
            )
        kept[process] = count
    return Cut(kept)


def is_consistent(
    computation: SyncComputation,
    cut: Cut,
    poset: Poset = None,
) -> bool:
    """Check the two consistency conditions of the module docstring."""
    from repro.order.message_order import message_poset

    cut.validate_against(computation)
    if poset is None:
        poset = message_poset(computation)

    # (a) participants agree: a kept message must be within *both*
    # participants' prefixes.
    agreed = cut.messages(computation)
    for process in computation.processes:
        projection = computation.process_messages(process)
        keep = cut.kept.get(process, 0)
        for message in projection[:keep]:
            if message not in agreed:
                return False

    # (b) down-set under ↦.
    for message in agreed:
        if not poset.strictly_below(message) <= agreed:
            return False
    return True


def snapshot_at(
    computation: SyncComputation,
    assignment: TimestampAssignment,
    frontier: VectorTimestamp,
) -> Cut:
    """The consistent cut ``{m : v(m) <= frontier}``.

    With characterizing timestamps this set is a down-set (if
    ``m' ↦ m`` and ``v(m) <= frontier`` then ``v(m') < v(m)``), and the
    per-process monotonicity of timestamps makes it prefix-shaped — so
    the result is always consistent, which the property tests verify.
    """
    included = frozenset(
        message
        for message in computation.messages
        if assignment.of(message) <= frontier
    )
    return cut_from_messages(computation, included)


def subcomputation(
    computation: SyncComputation, cut: Cut
) -> SyncComputation:
    """The computation restricted to a consistent cut's messages.

    Because a consistent cut is causally closed and prefix-shaped, the
    kept messages — re-indexed in their original execution order — form
    a valid synchronous computation over the same topology whose message
    poset is exactly the restriction of the original's.  This is the
    "replay from checkpoint" artefact: recovery restarts from the cut's
    sub-computation.
    """
    kept = cut.messages(computation)
    ordered = [m for m in computation.messages if m in kept]
    rebuilt = [
        SyncMessage(
            index=position,
            sender=message.sender,
            receiver=message.receiver,
            name=message.name,
        )
        for position, message in enumerate(ordered)
    ]
    return SyncComputation(computation.topology, rebuilt)


def cut_of_everything(computation: SyncComputation) -> Cut:
    """The full cut (every message kept)."""
    return Cut(
        {
            process: len(computation.process_messages(process))
            for process in computation.processes
        }
    )
