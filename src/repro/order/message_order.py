"""The ground-truth message order ``(M, ↦)`` of Section 2.

``m1 ▷ m2`` holds exactly when the two messages share a participant
process and ``m1`` occurs before ``m2`` on it (the four event-order
cases of the paper collapse to this because synchronous messages draw as
vertical arrows).  ``↦`` ("synchronously precedes") is the transitive
closure of ``▷``.

This module computes the poset directly from the execution order — it
is the oracle every clock algorithm is verified against, so it is kept
deliberately simple: per-process projections give ``▷``, and
:class:`repro.core.poset.Poset` computes the closure.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Set, Tuple

from repro.core.poset import Poset
from repro.sim.computation import SyncComputation, SyncMessage


def _process_projections(
    computation: SyncComputation,
) -> Iterator[Sequence[SyncMessage]]:
    """Each process's message projection, in process order.

    The single source of the per-process timelines both pair
    enumerations below are derived from.
    """
    for process in computation.processes:
        yield computation.process_messages(process)


def direct_precedence_pairs(
    computation: SyncComputation,
) -> List[Tuple[SyncMessage, SyncMessage]]:
    """All ``(m1, m2)`` with ``m1 ▷ m2`` — shared process, m1 earlier."""
    pairs: List[Tuple[SyncMessage, SyncMessage]] = []
    seen: Set[Tuple[int, int]] = set()
    for projection in _process_projections(computation):
        for i, earlier in enumerate(projection):
            for later in projection[i + 1 :]:
                key = (earlier.index, later.index)
                if key not in seen:
                    seen.add(key)
                    pairs.append((earlier, later))
    return pairs


def covering_pairs(
    computation: SyncComputation,
) -> List[Tuple[SyncMessage, SyncMessage]]:
    """Consecutive pairs per process projection — generate the same
    closure as :func:`direct_precedence_pairs` but in O(messages)."""
    pairs: List[Tuple[SyncMessage, SyncMessage]] = []
    for projection in _process_projections(computation):
        pairs.extend(zip(projection, projection[1:]))
    return pairs


def message_poset(computation: SyncComputation) -> Poset:
    """The poset ``(M, ↦)``: transitive closure of ``▷``.

    Elements are the :class:`SyncMessage` objects themselves (they are
    frozen dataclasses, hence hashable).

    >>> from repro.graphs.generators import path_topology
    >>> comp = SyncComputation.from_pairs(
    ...     path_topology(3), [("P1", "P2"), ("P2", "P3")])
    >>> poset = message_poset(comp)
    >>> poset.less(comp.message("m1"), comp.message("m2"))
    True
    """
    return Poset(computation.messages, covering_pairs(computation))


def directly_precedes(
    computation: SyncComputation, m1: SyncMessage, m2: SyncMessage
) -> bool:
    """``m1 ▷ m2`` — one shared participant and m1 occurs first."""
    if m1.index >= m2.index:
        return False
    shared = set(m1.participants()) & set(m2.participants())
    return bool(shared)


def synchronously_precedes(
    poset: Poset, m1: SyncMessage, m2: SyncMessage
) -> bool:
    """``m1 ↦ m2`` relative to a precomputed message poset."""
    return poset.less(m1, m2)


def concurrent_messages(
    poset: Poset,
) -> List[Tuple[SyncMessage, SyncMessage]]:
    """All unordered concurrent pairs ``m1 ‖ m2``.

    Delegates to the poset's bitset-backed ``incomparable_pairs`` — one
    mask extraction per message row rather than an O(n²) hash-probing
    sweep, so monitors can afford it on large completed computations.
    """
    return poset.incomparable_pairs()


def synchronous_chains_between(
    computation: SyncComputation,
    start: SyncMessage,
    end: SyncMessage,
    max_chains: int = 1000,
) -> List[List[SyncMessage]]:
    """Chains ``start ▷ .. ▷ end`` (each step a direct precedence).

    A chain of size ``k`` is a sequence of ``k`` messages, matching the
    paper's "synchronous chain of size k from m1 to mk".  Enumeration is
    bounded by ``max_chains`` to stay safe on dense computations.
    """
    successors: Dict[int, List[SyncMessage]] = {}
    messages = computation.messages
    for m in messages:
        successors[m.index] = [
            other
            for other in messages[m.index + 1 :]
            if directly_precedes(computation, m, other)
        ]

    chains: List[List[SyncMessage]] = []

    def extend(prefix: List[SyncMessage]) -> None:
        if len(chains) >= max_chains:
            return
        current = prefix[-1]
        if current == end:
            chains.append(list(prefix))
            return
        for nxt in successors[current.index]:
            if nxt.index <= end.index:
                prefix.append(nxt)
                extend(prefix)
                prefix.pop()

    extend([start])
    return chains


def longest_chain_size_between(
    computation: SyncComputation, start: SyncMessage, end: SyncMessage
) -> int:
    """Size of the longest synchronous chain from ``start`` to ``end``
    (0 when no chain exists)."""
    if start == end:
        return 1
    messages = computation.messages
    best: Dict[int, int] = {start.index: 1}
    for m in messages[start.index + 1 :]:
        if m.index > end.index:
            break
        candidates = [
            best[earlier.index]
            for earlier in messages[: m.index]
            if earlier.index in best
            and directly_precedes(computation, earlier, m)
        ]
        if candidates:
            best[m.index] = 1 + max(candidates)
    return best.get(end.index, 0)


def minimal_messages(poset: Poset) -> List[SyncMessage]:
    """Messages with no predecessor — the base case of Theorem 4."""
    return poset.minimal_elements()
