"""Ground-truth order relations and the encoding checker."""

from repro.order.checker import (
    CheckReport,
    Violation,
    assert_characterizes,
    check_encoding,
)
from repro.order.cuts import (
    Cut,
    cut_from_messages,
    cut_of_everything,
    is_consistent,
    snapshot_at,
    subcomputation,
)
from repro.order.happened_before import (
    all_events,
    causal_chain_exists,
    happened_before,
    happened_before_poset,
    timeline_cover_pairs,
)
from repro.order.message_order import (
    concurrent_messages,
    covering_pairs,
    direct_precedence_pairs,
    directly_precedes,
    longest_chain_size_between,
    message_poset,
    minimal_messages,
    synchronous_chains_between,
    synchronously_precedes,
)

__all__ = [
    "CheckReport",
    "Cut",
    "Violation",
    "cut_from_messages",
    "cut_of_everything",
    "is_consistent",
    "snapshot_at",
    "subcomputation",
    "all_events",
    "assert_characterizes",
    "causal_chain_exists",
    "check_encoding",
    "concurrent_messages",
    "covering_pairs",
    "direct_precedence_pairs",
    "directly_precedes",
    "happened_before",
    "happened_before_poset",
    "longest_chain_size_between",
    "message_poset",
    "minimal_messages",
    "synchronous_chains_between",
    "synchronously_precedes",
    "timeline_cover_pairs",
]
