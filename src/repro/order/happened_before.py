"""Ground-truth happened-before over events (Section 5).

With synchronous messages and their acknowledgements, a message's send
and receive are mutually ordered with everything around them, so the
message behaves as a single *shared event* on both participants'
timelines.  Lamport's happened-before over internal and external events
is then simply: the transitive closure of "consecutive on some process
timeline", where message events belong to two timelines at once.

This module builds that poset from an :class:`EventedComputation`; it is
the oracle against which the Section 5 event timestamps (implemented in
:mod:`repro.clocks.events`) are verified.
"""

from __future__ import annotations

from typing import List, Tuple, Union

from repro.core.poset import Poset
from repro.sim.computation import (
    EventedComputation,
    InternalEvent,
    SyncMessage,
)

EventLike = Union[InternalEvent, SyncMessage]


def all_events(evented: EventedComputation) -> List[EventLike]:
    """Every event: messages (each once) then internal events.

    Messages come first in execution order, then internal events in
    process/slot order, giving a deterministic element ordering.
    """
    events: List[EventLike] = list(evented.computation.messages)
    events.extend(evented.internal_events())
    return events


def timeline_cover_pairs(
    evented: EventedComputation,
) -> List[Tuple[EventLike, EventLike]]:
    """Consecutive pairs along every process timeline."""
    pairs: List[Tuple[EventLike, EventLike]] = []
    for process in evented.computation.processes:
        previous: EventLike = None
        for kind, item in evented.process_timeline(process):
            del kind
            if previous is not None:
                pairs.append((previous, item))
            previous = item
    return pairs


def happened_before_poset(evented: EventedComputation) -> Poset:
    """The happened-before order over messages and internal events."""
    return Poset(all_events(evented), timeline_cover_pairs(evented))


def happened_before(
    poset: Poset, e: EventLike, f: EventLike
) -> bool:
    """``e → f`` relative to a precomputed happened-before poset."""
    return poset.less(e, f)


def causal_chain_exists(
    poset: Poset, events: List[EventLike]
) -> bool:
    """True when ``events`` form a causal chain ``e1 → e2 → ... → ek``."""
    return all(
        poset.less(earlier, later)
        for earlier, later in zip(events, events[1:])
    )
