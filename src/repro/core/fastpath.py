"""Batch stamping fast path for the Figure 5 online algorithm.

:class:`~repro.clocks.online.OnlineProcessClock` is faithful to the
paper's per-process handshake, but driving a whole computation through
it allocates two fresh tuple-backed :class:`VectorTimestamp` objects per
message (one ``join``, one ``incremented``) and re-resolves the channel's
edge group through a dict of ``Edge`` objects on every hop.  For batch
stamping — the :meth:`OnlineEdgeClock.timestamp_computation` case, where
the entire computation is in hand — none of that churn is necessary:

* each process gets one mutable list-backed workspace
  (:class:`MutableVector`) updated in place with ``join_into``/``inc``;
* the channel -> edge-group lookup is resolved once per distinct channel
  and flattened into per-message index tables before the hot loop;
* both handshake sides provably converge to
  ``max(v_sender, v_receiver)`` with the channel's component bumped, so
  one fused join+increment produces the timestamp and the sender
  workspace is synchronized with a plain copy;
* exactly one immutable :class:`VectorTimestamp` is materialized per
  message — the timestamp itself.

The observability contract is preserved: :func:`stamp_batch` reports
*identical* ``_obs`` counter values to the per-object handshake path —
two joins, one message, one ack, and two piggybacked vectors per
message, with the varint payload of each pre-join workspace measured
exactly where the handshake measures its piggybacked/ack vectors.  The
metrics-off loop stays free of any accounting work.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Tuple

from repro.core.vector import Number, VectorTimestamp
from repro.obs import instrument as _obs

if TYPE_CHECKING:  # imported lazily to keep repro.core free of cycles
    from repro.graphs.decomposition import EdgeDecomposition
    from repro.sim.computation import Process, SyncComputation, SyncMessage


class MutableVector:
    """A mutable, list-backed vector workspace.

    This is the in-place counterpart of :class:`VectorTimestamp` used by
    the batch stamping loop: ``join_into`` and ``inc`` mutate the
    receiver, and :meth:`freeze` snapshots the current value as an
    immutable :class:`VectorTimestamp`.  Components keep their exact
    numeric types (the workspace never converts ``int`` to ``float``),
    so frozen timestamps are byte-identical to the slow path's.
    """

    __slots__ = ("_components",)

    def __init__(self, components: Iterable[Number]):
        self._components: List[Number] = list(components)

    @classmethod
    def zeros(cls, size: int) -> "MutableVector":
        """The all-zero workspace (Figure 5's "initially 0")."""
        if size < 0:
            raise ValueError(f"vector size must be non-negative, got {size}")
        return cls([0] * size)

    # ------------------------------------------------------------------
    # Sequence protocol (read side)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._components)

    def __iter__(self) -> Iterator[Number]:
        return iter(self._components)

    def __getitem__(self, index):
        return self._components[index]

    # ------------------------------------------------------------------
    # In-place updates
    # ------------------------------------------------------------------
    def join_into(self, other: "MutableVector") -> None:
        """``self := max(self, other)`` component-wise, in place."""
        mine = self._components
        theirs = other._components
        if len(mine) != len(theirs):
            raise ValueError(
                "cannot join vectors of different sizes: "
                f"{len(mine)} vs {len(theirs)}"
            )
        mine[:] = map(max, mine, theirs)

    def inc(self, index: int, amount: Number = 1) -> None:
        """``self[index] += amount`` in place (the ``v[g]++`` of Figure 5)."""
        components = self._components
        if not 0 <= index < len(components):
            raise IndexError(
                f"component index {index} out of range for size "
                f"{len(components)}"
            )
        components[index] += amount

    def copy_from(self, other: "MutableVector") -> None:
        """Overwrite this workspace with ``other``'s components."""
        if len(self._components) != len(other._components):
            raise ValueError(
                "cannot copy vectors of different sizes: "
                f"{len(self._components)} vs {len(other._components)}"
            )
        self._components[:] = other._components

    def freeze(self) -> VectorTimestamp:
        """An immutable snapshot of the current value."""
        return VectorTimestamp(self._components)

    def __repr__(self) -> str:
        inner = ",".join(str(c) for c in self._components)
        return f"MutableVector([{inner}])"


def stamp_batch(
    computation: SyncComputation, decomposition: EdgeDecomposition
) -> Dict[SyncMessage, VectorTimestamp]:
    """Timestamp every message of ``computation`` with the Figure 5
    algorithm in one pass, returning the message -> timestamp map.

    Produces timestamps identical to running the per-process handshake
    (:class:`~repro.clocks.online.OnlineProcessClock`) message by
    message: after a handshake both sides hold
    ``max(v_sender, v_receiver)`` with component ``e(m)`` incremented,
    so the fused update below is exact, not an approximation.
    """
    size = decomposition.size
    messages = computation.messages
    count = len(messages)

    workspaces: Dict[Process, MutableVector] = {
        process: MutableVector.zeros(size)
        for process in computation.processes
    }

    # Pre-resolve every per-message lookup into flat, index-aligned
    # tables: the edge-group dict (keyed by Edge objects) is consulted
    # once per distinct channel, and the hot loop below touches no
    # dictionaries keyed by rich objects at all.
    group_memo: Dict[Tuple[Process, Process], int] = {}
    sender_ws: List[MutableVector] = []
    receiver_ws: List[MutableVector] = []
    groups: List[int] = []
    for message in messages:
        channel = (message.sender, message.receiver)
        group = group_memo.get(channel)
        if group is None:
            group = decomposition.group_index_of(*channel)
            group_memo[channel] = group
        sender_ws.append(workspaces[message.sender])
        receiver_ws.append(workspaces[message.receiver])
        groups.append(group)

    timestamps: Dict[SyncMessage, VectorTimestamp] = {}
    m = _obs.metrics
    if m is None:
        for position, message in enumerate(messages):
            send = sender_ws[position]
            recv = receiver_ws[position]
            recv.join_into(send)
            recv.inc(groups[position])
            send.copy_from(recv)
            timestamps[message] = recv.freeze()
    else:
        # Metrics branch: measure the varint payload of each pre-join
        # workspace exactly where the handshake measures its
        # piggybacked vector (receiver side sees the sender's pre-send
        # vector; sender side sees the receiver's pre-merge ack), then
        # bulk-apply the per-run counters.  Per-message histogram
        # observations are batched by distinct payload size, which is
        # order-insensitive and therefore snapshot-identical to the
        # handshake's one-at-a-time observes.
        payload_of = _obs.piggyback_size_bytes
        payload_counts: Dict[int, int] = {}
        total_payload = 0
        for position, message in enumerate(messages):
            send = sender_ws[position]
            recv = receiver_ws[position]
            sent = payload_of(send)
            acked = payload_of(recv)
            total_payload += sent + acked
            payload_counts[sent] = payload_counts.get(sent, 0) + 1
            payload_counts[acked] = payload_counts.get(acked, 0) + 1
            recv.join_into(send)
            recv.inc(groups[position])
            send.copy_from(recv)
            timestamps[message] = recv.freeze()
        m.vector_component_count.set(size)
        if count:
            m.vector_joins.inc(2 * count)
            m.messages_timestamped.inc(count)
            m.acks_processed.inc(count)
            m.piggyback_bytes_total.inc(total_payload)
            for payload, times in payload_counts.items():
                m.piggyback_bytes.observe_many(payload, times)
    return timestamps


class WireBatchStats:
    """What one :func:`stamp_batch_wire` run put on the (virtual) wire."""

    __slots__ = (
        "wire_format",
        "messages",
        "frames",
        "payload_bytes",
        "resyncs",
    )

    def __init__(
        self,
        wire_format: str,
        messages: int,
        frames: int,
        payload_bytes: int,
        resyncs: int,
    ):
        self.wire_format = wire_format
        self.messages = messages
        self.frames = frames
        self.payload_bytes = payload_bytes
        self.resyncs = resyncs

    @property
    def bytes_per_message(self) -> float:
        """Piggyback payload bytes per message, **both** handshake legs
        (offer + acknowledgement) — the same accounting the distributed
        coordinator's ``piggyback_bytes`` uses."""
        return self.payload_bytes / self.messages if self.messages else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "wire_format": self.wire_format,
            "messages": self.messages,
            "frames": self.frames,
            "payload_bytes": self.payload_bytes,
            "resyncs": self.resyncs,
            "bytes_per_message": self.bytes_per_message,
        }

    def __repr__(self) -> str:
        return (
            f"WireBatchStats({self.wire_format}, "
            f"messages={self.messages}, "
            f"bytes_per_message={self.bytes_per_message:.2f})"
        )


def stamp_batch_wire(
    computation,
    decomposition: EdgeDecomposition,
    wire_format: str = "delta",
    resync_interval: "int | None" = None,
    collect_timestamps: bool = True,
    verify: bool = False,
):
    """Batch-stamp while running the piggyback wire codec per channel.

    The merge itself is the :func:`stamp_batch` fused update; on top of
    it every handshake leg (offer and acknowledgement) is *encoded*
    through one shared :class:`~repro.clocks.delta.PiggybackCodec`
    whose per-channel snapshots persist **across the whole batch** —
    exactly the state a long-lived connection would carry.  In
    ``bounded:K`` mode both workspaces are saturated to their K hottest
    components before each merge, matching
    ``OnlineProcessClock(bound_k=K)`` timestamp-for-timestamp.

    ``computation`` is a :class:`SyncComputation` (returns a message ->
    timestamp dict) or a plain iterable of ``(sender, receiver)`` pairs
    over ``decomposition.graph`` (returns a list) — the pair form lets
    the 10^6-message wire benchmark stream without materializing a
    message object per send.  ``collect_timestamps=False`` skips the
    per-message freeze entirely and returns ``None`` timestamps.

    ``verify=True`` additionally *decodes* every frame and checks the
    reconstruction against the encoder-side vector — the
    property-test hook proving delta frames are exact.

    Returns ``(timestamps, WireBatchStats)``.
    """
    from repro.clocks.delta import bound_components, make_codec

    if resync_interval is None:
        from repro.clocks.delta import DEFAULT_RESYNC_INTERVAL

        resync_interval = DEFAULT_RESYNC_INTERVAL
    size = decomposition.size
    codec = make_codec(wire_format, size, resync_interval=resync_interval)
    bound_k = codec.bound_k

    message_keyed = hasattr(computation, "messages")
    sends = computation.messages if message_keyed else computation

    workspaces: Dict[Process, MutableVector] = {}
    group_memo: Dict[Tuple[Process, Process], int] = {}
    timestamps_map: "Dict[SyncMessage, VectorTimestamp] | None" = None
    timestamps_list: "List[VectorTimestamp] | None" = None
    if collect_timestamps:
        if message_keyed:
            timestamps_map = {}
        else:
            timestamps_list = []

    count = 0
    for item in sends:
        if message_keyed:
            sender, receiver = item.sender, item.receiver
        else:
            sender, receiver = item
        channel = (sender, receiver)
        group = group_memo.get(channel)
        if group is None:
            group = decomposition.group_index_of(sender, receiver)
            group_memo[channel] = group
        send = workspaces.get(sender)
        if send is None:
            send = workspaces[sender] = MutableVector.zeros(size)
        recv = workspaces.get(receiver)
        if recv is None:
            recv = workspaces[receiver] = MutableVector.zeros(size)
        if bound_k is not None:
            send._components[:] = bound_components(
                send._components, bound_k
            )
            recv._components[:] = bound_components(
                recv._components, bound_k
            )
        offer_blob = codec.encode(channel, send)
        ack_blob = codec.encode((receiver, sender), recv)
        if verify:
            decoded_offer = list(codec.decode(channel, offer_blob))
            if decoded_offer != send._components:
                raise ValueError(
                    f"offer frame on {channel} decoded to "
                    f"{decoded_offer}, expected {send._components}"
                )
            decoded_ack = list(
                codec.decode((receiver, sender), ack_blob)
            )
            if decoded_ack != recv._components:
                raise ValueError(
                    f"ack frame on {(receiver, sender)} decoded to "
                    f"{decoded_ack}, expected {recv._components}"
                )
        recv.join_into(send)
        recv.inc(group)
        send.copy_from(recv)
        count += 1
        if timestamps_map is not None:
            timestamps_map[item] = recv.freeze()
        elif timestamps_list is not None:
            timestamps_list.append(recv.freeze())

    stats = WireBatchStats(
        wire_format=wire_format,
        messages=count,
        frames=codec.frames,
        payload_bytes=codec.payload_bytes,
        resyncs=codec.resyncs,
    )
    if timestamps_map is not None:
        return timestamps_map, stats
    return timestamps_list, stats
