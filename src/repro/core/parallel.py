"""Sharded stamping and closure engine (ROADMAP item 4).

Every hot path in the library is single-threaded; this module partitions
a :class:`~repro.sim.computation.SyncComputation` into **causally
independent work units** and executes them through one of two backends,
merging the results into output that is byte-identical to the serial
paths — same timestamps, same closed bitmask rows, same chain partition,
same ``_obs`` counter totals.

Two shard planners
==================

*Process-disjoint segments* (online batch stamping).  Messages only
become causally related through shared processes, so the connected
components of the "shares a process" relation — computed with a
union-find over the message list — are provably independent: no
handshake in one component ever reads a workspace written by another.
Each segment is stamped exactly like :func:`repro.core.fastpath.stamp_batch`
(full-width workspaces, fused join+increment), and the per-segment
timestamp lists are merged back in global message order.

*Contiguous row blocks* (offline closure + matcher feed).  With messages
in insertion order, position ``p`` is a *cut point* when no cover edge
``(i, j)`` has ``i < p <= j``; the blocks between consecutive cut points
are forward-closed under the order, so each block's transitive closure
equals the restriction of the global closure.  Workers close blocks in
**block-local index space** — a row of a 20k-message poset shrinks from
a ~20k-bit integer to a block-sized one, which is where the single-core
speedup comes from — and the parent shifts the local rows back to global
bit positions.  The same local rows feed a per-block
:meth:`~repro.core.chains.BipartiteMatcher.from_bitmask_rows` run whose
merged matching provably equals the global Hopcroft–Karp matching
(BFS layers and augmenting paths never cross a block boundary on a
block-diagonal adjacency).

Execution backends
==================

``"process"`` — a fork-preferring :class:`concurrent.futures.ProcessPoolExecutor`
(the :mod:`repro.sim.distributed` context policy, reimplemented locally
so ``repro.core`` keeps no ``repro.sim`` dependency).  Workers run
:func:`gc.freeze` + :func:`gc.disable` in their initializer: a forked
child inherits the parent's heap copy-on-write, and letting the cyclic
GC walk that inherited heap faults in every page — on the containers we
bench in, that costs more than the closure itself.  Shard payloads and
closed rows travel as packed little-endian bytes.

``"inline"`` — the same plan, sharded loop, and merge executed in the
parent process.  Chosen automatically when the CPU affinity mask
(:func:`available_workers`) offers a single core, where a process pool
can only add IPC cost on top of time-sliced compute; the block-local
closure and matching wins survive because they are algorithmic, not
concurrency, effects.

Serial fallbacks
================

The engine refuses to shard — and the callers run the untouched serial
code — when ``workers`` resolves to ``1``, when the plan finds a single
shard (one process component online, no cut points offline), or when
the computation is empty.  A worker-process crash raises
:class:`~repro.exceptions.ParallelExecutionError` (library errors such
as :class:`~repro.exceptions.PosetError` propagate unchanged); the
merge never runs on partial results.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import time
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.chains import BipartiteMatcher
from repro.core.fastpath import MutableVector, stamp_batch
from repro.core.poset import Poset, close_transitive_rows
from repro.core.vector import VectorTimestamp
from repro.exceptions import ParallelExecutionError, ReproError
from repro.obs import instrument as _obs

if TYPE_CHECKING:  # imported lazily to keep repro.core cycle-free
    from repro.graphs.decomposition import EdgeDecomposition
    from repro.sim.computation import SyncComputation, SyncMessage


# ----------------------------------------------------------------------
# Worker-count resolution (satellite: respect container CPU limits)
# ----------------------------------------------------------------------
def available_workers() -> int:
    """Usable CPU count, honoring the process affinity mask.

    ``len(os.sched_getaffinity(0))`` sees cgroup/container cpusets that
    ``os.cpu_count()`` ignores; platforms without ``sched_getaffinity``
    fall back to ``os.cpu_count() or 1``.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platform
            pass
    return os.cpu_count() or 1


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers`` request: ``None``/``1`` serial, ``0`` auto."""
    if workers is None:
        return 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return available_workers()
    return workers


def _mp_context():
    """Fork-preferring multiprocessing context (POSIX), default elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platform
        return multiprocessing.get_context()


def _worker_initializer() -> None:  # pragma: no cover - runs in children
    """Keep forked workers off the parent's copy-on-write heap.

    Freezing moves every inherited object into the permanent generation
    and disabling collection stops the cyclic GC from walking (and
    therefore paging in) the parent's heap; shard workers allocate only
    acyclic rows and arrays, so they need no collector.
    """
    gc.freeze()
    gc.disable()


def _choose_backend(backend: Optional[str], workers: int) -> str:
    """``"process"`` when real cores are available, else ``"inline"``."""
    if backend is not None:
        if backend not in ("inline", "process"):
            raise ValueError(
                f"unknown backend {backend!r}; expected 'inline' or "
                "'process'"
            )
        return backend
    if workers > 1 and available_workers() > 1:
        return "process"
    return "inline"


def _run_jobs(job, payloads: List[tuple], backend: str, workers: int):
    """Execute ``job`` over ``payloads``, inline or on a fork pool.

    Results come back in payload order.  Worker failures surface as
    :class:`ParallelExecutionError` unless they are library errors; a
    broken pool (a worker died without raising) is always wrapped.
    """
    if backend == "inline":
        return [job(payload) for payload in payloads]
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    pool_size = min(workers, len(payloads))
    try:
        with ProcessPoolExecutor(
            max_workers=pool_size,
            mp_context=_mp_context(),
            initializer=_worker_initializer,
        ) as pool:
            return list(pool.map(job, payloads))
    except ReproError:
        raise
    except BrokenProcessPool as exc:
        raise ParallelExecutionError(
            f"a shard worker process died ({exc}); no partial results "
            "were merged"
        ) from exc
    except Exception as exc:
        raise ParallelExecutionError(
            f"shard worker failed: {exc!r}; no partial results were "
            "merged"
        ) from exc


# ----------------------------------------------------------------------
# Online planner: process-disjoint segments
# ----------------------------------------------------------------------
def plan_process_segments(
    computation: "SyncComputation",
) -> List[List[int]]:
    """Partition message positions into process-disjoint segments.

    Union-find over the processes touched by each message; two messages
    land in the same segment exactly when a chain of shared processes
    connects them — which is also the only way the paper's causality
    (*synchronously precedes*) can relate them, so segments never share
    a causal dependency.  Each segment lists global message positions in
    ascending order; segments are ordered by first appearance.
    """
    parent: Dict[object, object] = {}

    def find(x):
        root = x
        while parent[root] is not root:
            root = parent[root]
        while parent[x] is not root:
            parent[x], x = root, parent[x]
        return root

    for message in computation.messages:
        s, r = message.sender, message.receiver
        if s not in parent:
            parent[s] = s
        if r not in parent:
            parent[r] = r
        rs, rr = find(s), find(r)
        if rs is not rr:
            parent[rr] = rs

    segments: Dict[object, List[int]] = {}
    for position, message in enumerate(computation.messages):
        segments.setdefault(find(message.sender), []).append(position)
    return list(segments.values())


def _stamp_segment_job(payload: tuple):
    """Stamp one process-disjoint segment (runs inline or in a worker).

    ``payload`` is ``(size, slot_count, senders, receivers, groups,
    measure)`` with per-message sender/receiver workspace slots and edge
    groups.  Mirrors the :func:`~repro.core.fastpath.stamp_batch` loop
    exactly — full-width workspaces, payloads measured on the pre-join
    vectors — and returns ``(component_tuples, payload_counts,
    total_payload)`` so the parent can bulk-apply the metrics once,
    like the serial path does.
    """
    size, slot_count, senders, receivers, groups, measure = payload
    workspaces = [MutableVector.zeros(size) for _ in range(slot_count)]
    components: List[Tuple[int, ...]] = []
    payload_counts: Dict[int, int] = {}
    total_payload = 0
    payload_of = _obs.piggyback_size_bytes
    for s, r, g in zip(senders, receivers, groups):
        send = workspaces[s]
        recv = workspaces[r]
        if measure:
            sent = payload_of(send)
            acked = payload_of(recv)
            total_payload += sent + acked
            payload_counts[sent] = payload_counts.get(sent, 0) + 1
            payload_counts[acked] = payload_counts.get(acked, 0) + 1
        recv.join_into(send)
        recv.inc(g)
        send.copy_from(recv)
        components.append(tuple(recv))
    return components, payload_counts, total_payload


def stamp_batch_parallel(
    computation: "SyncComputation",
    decomposition: "EdgeDecomposition",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> Dict["SyncMessage", VectorTimestamp]:
    """Sharded :func:`~repro.core.fastpath.stamp_batch`, byte-identical.

    Falls back to the serial fast path when ``workers`` resolves to 1 or
    the computation has a single process-disjoint segment.
    """
    resolved = resolve_workers(workers)
    messages = computation.messages
    if resolved <= 1 or not messages:
        return stamp_batch(computation, decomposition)
    segments = plan_process_segments(computation)
    if len(segments) <= 1:
        return stamp_batch(computation, decomposition)

    chosen = _choose_backend(backend, resolved)
    size = decomposition.size
    m = _obs.metrics
    measure = m is not None

    group_memo: Dict[Tuple[object, object], int] = {}
    payloads = []
    for positions in segments:
        slots: Dict[object, int] = {}
        senders: List[int] = []
        receivers: List[int] = []
        groups: List[int] = []
        for position in positions:
            message = messages[position]
            channel = (message.sender, message.receiver)
            group = group_memo.get(channel)
            if group is None:
                group = decomposition.group_index_of(*channel)
                group_memo[channel] = group
            senders.append(slots.setdefault(message.sender, len(slots)))
            receivers.append(
                slots.setdefault(message.receiver, len(slots))
            )
            groups.append(group)
        payloads.append(
            (size, len(slots), senders, receivers, groups, measure)
        )

    results = _run_jobs(_stamp_segment_job, payloads, chosen, resolved)

    merge_started = time.perf_counter()
    by_position: List[Optional[VectorTimestamp]] = [None] * len(messages)
    payload_counts: Dict[int, int] = {}
    total_payload = 0
    for positions, (components, counts, segment_total) in zip(
        segments, results
    ):
        for position, component in zip(positions, components):
            by_position[position] = VectorTimestamp(component)
        total_payload += segment_total
        for value, count in counts.items():
            payload_counts[value] = payload_counts.get(value, 0) + count
    timestamps: Dict["SyncMessage", VectorTimestamp] = {
        message: by_position[position]
        for position, message in enumerate(messages)
    }
    merge_seconds = time.perf_counter() - merge_started

    if m is not None:
        # Identical bulk application to stamp_batch's metrics branch,
        # plus the engine's own shard accounting.
        count = len(messages)
        m.vector_component_count.set(size)
        if count:
            m.vector_joins.inc(2 * count)
            m.messages_timestamped.inc(count)
            m.acks_processed.inc(count)
            m.piggyback_bytes_total.inc(total_payload)
            for value, times in payload_counts.items():
                m.piggyback_bytes.observe_many(value, times)
        m.parallel_shards_total.inc(len(segments))
        m.parallel_merge_seconds.observe(merge_seconds)
    return timestamps


# ----------------------------------------------------------------------
# Offline planner: contiguous row blocks
# ----------------------------------------------------------------------
class OfflinePlan:
    """Sharding plan for one offline (Figure 9) pipeline run."""

    __slots__ = ("elements", "blocks", "local_direct", "triangular")

    def __init__(self, elements, blocks, local_direct, triangular):
        self.elements = elements
        #: ``(lo, hi)`` position ranges, consecutive and covering.
        self.blocks: List[Tuple[int, int]] = blocks
        #: Per-block direct-successor rows in block-local bit positions.
        self.local_direct: List[List[int]] = local_direct
        #: True when every cover pair points forward (``i < j``), which
        #: makes insertion order a topological order inside each block.
        self.triangular = triangular


def plan_row_blocks(
    elements: Sequence,
    pairs: Sequence[Tuple[object, object]],
) -> Optional[OfflinePlan]:
    """Cut ``elements`` into causally independent contiguous blocks.

    ``pairs`` is the cover relation.  Position ``p`` starts a new block
    exactly when no pair ``(i, j)`` spans ``i < p <= j``; blocks are
    then forward-closed, so closing each block locally reproduces the
    restriction of the global closure.  Returns ``None`` when the plan
    would not help (fewer than two blocks) — the caller falls back to
    the serial path.
    """
    n = len(elements)
    if n == 0:
        return None
    index = {element: i for i, element in enumerate(elements)}
    reach = [0] * n
    triangular = True
    for smaller, larger in pairs:
        i = index[smaller]
        j = index[larger]
        if j <= i:
            triangular = False
            i, j = j, i  # a backward pair still ties the span [j, i]
        if j > reach[i]:
            reach[i] = j
    cuts = [0]
    frontier = 0
    for i in range(n):
        if reach[i] > frontier:
            frontier = reach[i]
        if i + 1 < n and i + 1 > frontier:
            cuts.append(i + 1)
    cuts.append(n)
    if len(cuts) < 3:
        return None
    blocks = list(zip(cuts, cuts[1:]))

    block_of = [0] * n
    for b, (lo, hi) in enumerate(blocks):
        for i in range(lo, hi):
            block_of[i] = b
    local_direct: List[List[int]] = [
        [0] * (hi - lo) for lo, hi in blocks
    ]
    for smaller, larger in pairs:
        i = index[smaller]
        j = index[larger]
        lo = blocks[block_of[i]][0]
        local_direct[block_of[i]][i - lo] |= 1 << (j - lo)
    return OfflinePlan(elements, blocks, local_direct, triangular)


def _close_block_rows(
    local_direct: List[int], triangular: bool
) -> Tuple[List[int], List[int]]:
    """Close one block in local index space.

    The triangular fast path skips Kahn's sort: when every cover points
    forward, positions already are a topological order, so the reverse
    sweep for ``above`` and the forward sweep for ``below`` run straight
    over ``range``.  Non-triangular blocks take the generic (cycle-
    detecting) :func:`~repro.core.poset.close_transitive_rows`.
    """
    if not triangular:
        return close_transitive_rows(local_direct)
    k = len(local_direct)
    above = [0] * k
    for i in range(k - 1, -1, -1):
        row = local_direct[i]
        if row:
            acc = row
            m = row
            while m:
                low = m & -m
                acc |= above[low.bit_length() - 1]
                m ^= low
            above[i] = acc
    direct_pred = [0] * k
    for i in range(k):
        bit = 1 << i
        m = local_direct[i]
        while m:
            low = m & -m
            direct_pred[low.bit_length() - 1] |= bit
            m ^= low
    below = [0] * k
    for i in range(k):
        row = direct_pred[i]
        if row:
            acc = row
            m = row
            while m:
                low = m & -m
                acc |= below[low.bit_length() - 1]
                m ^= low
            below[i] = acc
    return above, below


def _pack_rows(rows: List[int], stride: int) -> bytes:
    return b"".join(row.to_bytes(stride, "little") for row in rows)


def _unpack_rows(blob: bytes, stride: int, count: int) -> List[int]:
    return [
        int.from_bytes(blob[i * stride : (i + 1) * stride], "little")
        for i in range(count)
    ]


def _offline_block_job(payload: tuple):
    """Close (and optionally match) one row block.

    Inline payloads carry the local direct rows as ints; process
    payloads carry them packed (``bytes``) and return packed rows, so a
    20k-row closure ships megabytes of flat buffers instead of pickled
    big-int lists.
    """
    local_direct, k, stride, triangular, want_match = payload
    if stride:
        local_direct = _unpack_rows(local_direct, stride, k)
    above, below = _close_block_rows(local_direct, triangular)
    match: Optional[List[int]] = None
    if want_match:
        span = list(range(k))
        matcher = BipartiteMatcher.from_bitmask_rows(span, span, above)
        match = matcher.left_match_indices()
    if stride:
        out_stride = (k + 7) // 8
        return (
            _pack_rows(above, out_stride),
            _pack_rows(below, out_stride),
            out_stride,
            match,
        )
    return above, below, 0, match


def parallel_poset_and_chains(
    computation: "SyncComputation",
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    want_chains: bool = True,
) -> Optional[tuple]:
    """Sharded message-poset closure (+ Dilworth chain partition).

    Returns ``(poset, chains, shard_count)`` with output byte-identical
    to ``message_poset(computation)`` followed by
    :func:`~repro.core.chains.minimum_chain_partition`, or ``None`` when
    the plan cannot shard (the caller runs the serial path).  ``chains``
    is ``None`` when ``want_chains`` is false.
    """
    from repro.order.message_order import covering_pairs

    resolved = resolve_workers(workers)
    if resolved <= 1:
        return None
    elements = computation.messages
    plan = plan_row_blocks(elements, covering_pairs(computation))
    if plan is None:
        return None

    chosen = _choose_backend(backend, resolved)
    payloads = []
    for (lo, hi), local in zip(plan.blocks, plan.local_direct):
        k = hi - lo
        if chosen == "process":
            stride = (k + 7) // 8
            payloads.append(
                (
                    _pack_rows(local, stride),
                    k,
                    stride,
                    plan.triangular,
                    want_chains,
                )
            )
        else:
            payloads.append((local, k, 0, plan.triangular, want_chains))

    results = _run_jobs(_offline_block_job, payloads, chosen, resolved)

    merge_started = time.perf_counter()
    n = len(elements)
    above_global = [0] * n
    below_global = [0] * n
    match: Dict[int, int] = {}
    for (lo, hi), (above, below, stride, block_match) in zip(
        plan.blocks, results
    ):
        k = hi - lo
        if stride:
            above = _unpack_rows(above, stride, k)
            below = _unpack_rows(below, stride, k)
        for i in range(k):
            above_global[lo + i] = above[i] << lo
            below_global[lo + i] = below[i] << lo
        if block_match is not None:
            for i, j in enumerate(block_match):
                if j != -1:
                    match[lo + i] = lo + j
    poset = Poset._from_closed_bits(
        list(elements), above_global, below_global
    )
    chains: Optional[List[List[object]]] = None
    if want_chains:
        # Same successor-pointer walk as minimum_chain_partition, on
        # positions instead of values: start every chain at an element
        # no matched edge points to, in insertion order.
        has_predecessor = set(match.values())
        chains = []
        for position in range(n):
            if position in has_predecessor:
                continue
            chain = [elements[position]]
            current = position
            while current in match:
                current = match[current]
                chain.append(elements[current])
            chains.append(chain)
    merge_seconds = time.perf_counter() - merge_started

    m = _obs.metrics
    if m is not None:
        m.parallel_shards_total.inc(len(plan.blocks))
        m.parallel_merge_seconds.observe(merge_seconds)
    return poset, chains, len(plan.blocks)
