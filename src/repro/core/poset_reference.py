"""The pre-bitset dict-of-sets poset kernel, kept as a specification.

:class:`repro.core.poset.Poset` stores the order as bitmask rows; this
module preserves the original representation — one Python ``set`` of
elements above/below per element — byte for byte in behaviour.  It
exists for two reasons:

* the Hypothesis suite in ``tests/properties`` replays random
  computations through both kernels and demands identical closures,
  covers, incomparable pairs, widths, and realizer ranks, so the bitset
  kernel can never silently drift from the semantics the rest of the
  library was verified against;
* ``benchmarks/test_bench_offline.py`` runs the full offline (Figure 9)
  pipeline on both kernels and snapshots the old-vs-new speedup to
  ``BENCH_offline.json``.

It is **not** part of the public API and nothing on a hot path may
import it.  The only deliberate deviation from the original:
:meth:`ReferencePoset.same_order_as` compares via the public
``strictly_above`` accessor so it can be checked against a bitset-backed
poset, not just another reference one.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Sequence,
    Set,
    Tuple,
)

from repro.exceptions import NotAPartialOrderError, PosetError

Element = Hashable


class ReferencePoset:
    """The seed ``Poset``: per-element ``set`` closure, O(n³) covers."""

    __slots__ = (
        "_elements",
        "_index",
        "_below",
        "_above",
        "_succ_index",
        "__weakref__",
    )

    def __init__(
        self,
        elements: Iterable[Element],
        relation: Iterable[Tuple[Element, Element]] = (),
    ):
        self._succ_index: "Tuple[Tuple[int, ...], ...] | None" = None
        self._elements: List[Element] = []
        self._index: Dict[Element, int] = {}
        for element in elements:
            if element in self._index:
                raise PosetError(f"duplicate element {element!r}")
            self._index[element] = len(self._elements)
            self._elements.append(element)

        self._below: Dict[Element, Set[Element]] = {
            element: set() for element in self._elements
        }
        self._above: Dict[Element, Set[Element]] = {
            element: set() for element in self._elements
        }

        successors: Dict[Element, Set[Element]] = {
            element: set() for element in self._elements
        }
        for smaller, larger in relation:
            if smaller not in self._index:
                raise PosetError(f"unknown element {smaller!r} in relation")
            if larger not in self._index:
                raise PosetError(f"unknown element {larger!r} in relation")
            if smaller == larger:
                raise NotAPartialOrderError(
                    f"relation is not irreflexive: {smaller!r} < {smaller!r}"
                )
            successors[smaller].add(larger)

        self._close_transitively(successors)

    # ------------------------------------------------------------------
    def _close_transitively(
        self, successors: Dict[Element, Set[Element]]
    ) -> None:
        order = _topological_order(self._elements, successors)
        if order is None:
            raise NotAPartialOrderError("relation contains a cycle")

        strictly_above: Dict[Element, Set[Element]] = {}
        for element in reversed(order):
            above: Set[Element] = set()
            for succ in successors[element]:
                above.add(succ)
                above.update(strictly_above[succ])
            strictly_above[element] = above

        for element, above in strictly_above.items():
            self._above[element] = above
            for other in above:
                self._below[other].add(element)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements)

    def __contains__(self, element: Element) -> bool:
        return element in self._index

    @property
    def elements(self) -> Tuple[Element, ...]:
        return tuple(self._elements)

    def _require(self, element: Element) -> None:
        if element not in self._index:
            raise PosetError(f"element {element!r} not in poset")

    def less(self, x: Element, y: Element) -> bool:
        self._require(x)
        self._require(y)
        return y in self._above[x]

    def less_equal(self, x: Element, y: Element) -> bool:
        return x == y or self.less(x, y)

    def comparable(self, x: Element, y: Element) -> bool:
        return self.less(x, y) or self.less(y, x)

    def concurrent(self, x: Element, y: Element) -> bool:
        self._require(x)
        self._require(y)
        return x != y and not self.comparable(x, y)

    # ------------------------------------------------------------------
    def strictly_below(self, element: Element) -> FrozenSet[Element]:
        self._require(element)
        return frozenset(self._below[element])

    def strictly_above(self, element: Element) -> FrozenSet[Element]:
        self._require(element)
        return frozenset(self._above[element])

    def successor_index(self) -> Tuple[Tuple[int, ...], ...]:
        cached = self._succ_index
        if cached is None:
            index = self._index
            cached = tuple(
                tuple(sorted(index[y] for y in self._above[x]))
                for x in self._elements
            )
            self._succ_index = cached
        return cached

    def down_set(self, element: Element) -> FrozenSet[Element]:
        return self.strictly_below(element) | {element}

    def up_set(self, element: Element) -> FrozenSet[Element]:
        return self.strictly_above(element) | {element}

    def minimal_elements(self) -> List[Element]:
        return [e for e in self._elements if not self._below[e]]

    def maximal_elements(self) -> List[Element]:
        return [e for e in self._elements if not self._above[e]]

    def cover_pairs(self) -> List[Tuple[Element, Element]]:
        covers: List[Tuple[Element, Element]] = []
        for x in self._elements:
            above_x = self._above[x]
            for y in self._elements:
                if y not in above_x:
                    continue
                if any(z in above_x and y in self._above[z] for z in above_x):
                    continue
                covers.append((x, y))
        return covers

    def relation_pairs(self) -> List[Tuple[Element, Element]]:
        pairs: List[Tuple[Element, Element]] = []
        for x in self._elements:
            for y in self._elements:
                if y in self._above[x]:
                    pairs.append((x, y))
        return pairs

    def incomparable_pairs(self) -> List[Tuple[Element, Element]]:
        pairs: List[Tuple[Element, Element]] = []
        for i, x in enumerate(self._elements):
            for y in self._elements[i + 1 :]:
                if not self.comparable(x, y):
                    pairs.append((x, y))
        return pairs

    def restricted_to(self, subset: Iterable[Element]) -> "ReferencePoset":
        keep = list(dict.fromkeys(subset))
        keep_set = set(keep)
        for element in keep:
            self._require(element)
        pairs = [
            (x, y)
            for x in keep
            for y in self._above[x]
            if y in keep_set
        ]
        return ReferencePoset(keep, pairs)

    def dual(self) -> "ReferencePoset":
        pairs = [(y, x) for (x, y) in self.relation_pairs()]
        return ReferencePoset(self._elements, pairs)

    # ------------------------------------------------------------------
    def is_chain(self, elements: Sequence[Element]) -> bool:
        items = list(dict.fromkeys(elements))
        for element in items:
            self._require(element)
        if len(items) <= 1:
            return True
        items.sort(key=lambda e: len(self._below[e]))
        return all(
            self.less(items[i], items[i + 1]) for i in range(len(items) - 1)
        )

    def is_antichain(self, elements: Sequence[Element]) -> bool:
        items = list(elements)
        return all(
            not self.comparable(items[i], items[j]) and items[i] != items[j]
            for i in range(len(items))
            for j in range(i + 1, len(items))
        )

    def longest_chain(self) -> List[Element]:
        best_to: Dict[Element, List[Element]] = {}
        for element in self.linear_extension():
            best_prefix: List[Element] = []
            for lower in self._below[element]:
                candidate = best_to[lower]
                if len(candidate) > len(best_prefix):
                    best_prefix = candidate
            best_to[element] = best_prefix + [element]
        if not best_to:
            return []
        return max(best_to.values(), key=len)

    def height(self) -> int:
        return len(self.longest_chain())

    def linear_extension(self) -> List[Element]:
        successors = {
            e: set(self._cover_successors(e)) for e in self._elements
        }
        order = _topological_order(self._elements, successors)
        if order is None:  # pragma: no cover - construction is acyclic
            raise PosetError("closed relation unexpectedly cyclic")
        return order

    def _cover_successors(self, element: Element) -> List[Element]:
        above = self._above[element]
        return [
            y
            for y in above
            if not any(z in above and y in self._above[z] for z in above)
        ]

    # ------------------------------------------------------------------
    def same_order_as(self, other) -> bool:
        if set(self._elements) != set(other.elements):
            return False
        return all(
            frozenset(self._above[e]) == other.strictly_above(e)
            for e in self._elements
        )

    def __repr__(self) -> str:
        return (
            f"ReferencePoset({len(self._elements)} elements, "
            f"{len(self.relation_pairs())} ordered pairs)"
        )


def _topological_order(
    elements: Sequence[Element],
    successors: Dict[Element, Set[Element]],
) -> "List[Element] | None":
    """Kahn's algorithm; returns ``None`` when the relation has a cycle."""
    index = {element: position for position, element in enumerate(elements)}
    indegree: Dict[Element, int] = {e: 0 for e in elements}
    for element in elements:
        for succ in successors.get(element, ()):
            indegree[succ] += 1

    ready = [e for e in elements if indegree[e] == 0]
    order: List[Element] = []
    position = 0
    while position < len(ready):
        current = ready[position]
        position += 1
        order.append(current)
        for succ in sorted(successors.get(current, ()), key=index.__getitem__):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if len(order) != len(elements):
        return None
    return order
