"""Finite partially ordered sets on a word-parallel bitset kernel.

The paper's central object is the poset ``(M, ↦)`` formed by the messages
of a synchronous computation under the *synchronously precedes* relation.
This module provides a small, self-contained poset implementation with
exactly the operations the algorithms need:

* construction from a cover relation or from an arbitrary (acyclic)
  relation, with transitive closure computed internally;
* comparability and concurrency tests;
* minimal/maximal elements, down-sets and up-sets;
* transitive reduction (the covering relation), used for drawing and for
  efficient chain searches;
* enumeration of all ordered/incomparable pairs, used by the encoding
  checker and by the dimension machinery.

Internally the strict order is stored as two arrays of arbitrary-
precision integer bitmasks indexed by insertion position: bit ``j`` of
``_above_bits[i]`` is set exactly when ``elements[i] < elements[j]``,
and ``_below_bits`` is the transpose.  Transitive closure is a
word-parallel OR-sweep over a topological order, the covering relation
is a per-row mask subtraction, and pair enumerations are bit
extractions — the representation that makes the offline (Figure 9)
pipeline fast at scale.  ``tests/properties`` pins this kernel as
observationally identical to the reference dict-of-sets implementation
kept in :mod:`repro.core.poset_reference`.

Elements may be any hashable values.  Iteration order over elements is
the insertion order, which keeps every algorithm in the library
deterministic for a fixed input.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Sequence,
    Tuple,
)

from repro.exceptions import NotAPartialOrderError, PosetError

Element = Hashable

try:  # Python >= 3.10
    _popcount = int.bit_count
except AttributeError:  # pragma: no cover - 3.9 fallback
    def _popcount(value: int) -> int:
        return bin(value).count("1")


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set-bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class Poset:
    """An irreflexive, transitive order on a finite set of elements.

    The constructor takes the *strict* order as an iterable of
    ``(smaller, larger)`` pairs; the transitive closure is computed, and
    a cycle (which would make some element smaller than itself) raises
    :class:`NotAPartialOrderError`.

    >>> p = Poset("abc", [("a", "b"), ("b", "c")])
    >>> p.less("a", "c")
    True
    >>> p.concurrent("a", "a")
    False
    """

    __slots__ = (
        "_elements",
        "_index",
        "_above_bits",
        "_below_bits",
        "_succ_index",
        "_cover_bits",
        "_cover_pair_cache",
        "__weakref__",
    )

    def __init__(
        self,
        elements: Iterable[Element],
        relation: Iterable[Tuple[Element, Element]] = (),
    ):
        self._succ_index: "Tuple[Tuple[int, ...], ...] | None" = None
        self._cover_bits: "List[int] | None" = None
        self._cover_pair_cache: "List[Tuple[Element, Element]] | None" = None
        self._elements: List[Element] = []
        self._index: Dict[Element, int] = {}
        for element in elements:
            if element in self._index:
                raise PosetError(f"duplicate element {element!r}")
            self._index[element] = len(self._elements)
            self._elements.append(element)

        index = self._index
        direct = [0] * len(self._elements)
        for smaller, larger in relation:
            i = index.get(smaller, -1)
            if i < 0:
                raise PosetError(f"unknown element {smaller!r} in relation")
            j = index.get(larger, -1)
            if j < 0:
                raise PosetError(f"unknown element {larger!r} in relation")
            if i == j:
                raise NotAPartialOrderError(
                    f"relation is not irreflexive: {smaller!r} < {smaller!r}"
                )
            direct[i] |= 1 << j

        self._close_transitively(direct)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _close_transitively(self, direct: List[int]) -> None:
        """Fill the bitmask rows with the transitive closure of ``direct``."""
        self._above_bits, self._below_bits = close_transitive_rows(direct)

    @classmethod
    def _from_closed_bits(
        cls,
        elements: List[Element],
        above_bits: List[int],
        below_bits: List[int],
    ) -> "Poset":
        """Trusted constructor over already-transitively-closed rows.

        Used by :meth:`restricted_to` and :meth:`dual`, whose inputs are
        closed by construction — re-validating and re-closing them
        through ``__init__`` would redo the whole closure from pairs.
        The public constructor's :class:`NotAPartialOrderError`
        behaviour is unchanged; this path is internal only.
        """
        poset = cls.__new__(cls)
        poset._elements = elements
        poset._index = {e: i for i, e in enumerate(elements)}
        poset._above_bits = above_bits
        poset._below_bits = below_bits
        poset._succ_index = None
        poset._cover_bits = None
        poset._cover_pair_cache = None
        return poset

    @classmethod
    def from_cover_relation(
        cls,
        elements: Iterable[Element],
        covers: Iterable[Tuple[Element, Element]],
    ) -> "Poset":
        """Build a poset from its covering (Hasse diagram) relation."""
        return cls(elements, covers)

    @classmethod
    def chain(cls, elements: Sequence[Element]) -> "Poset":
        """A totally ordered poset in the order of ``elements``."""
        pairs = [
            (elements[i], elements[i + 1]) for i in range(len(elements) - 1)
        ]
        return cls(elements, pairs)

    @classmethod
    def antichain(cls, elements: Iterable[Element]) -> "Poset":
        """A poset in which every pair of elements is incomparable."""
        return cls(elements, ())

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements)

    def __contains__(self, element: Element) -> bool:
        return element in self._index

    @property
    def elements(self) -> Tuple[Element, ...]:
        """The elements in insertion order."""
        return tuple(self._elements)

    def _require(self, element: Element) -> int:
        position = self._index.get(element, -1)
        if position < 0:
            raise PosetError(f"element {element!r} not in poset")
        return position

    def less(self, x: Element, y: Element) -> bool:
        """True when ``x`` is strictly below ``y``."""
        i = self._require(x)
        j = self._require(y)
        return (self._above_bits[i] >> j) & 1 == 1

    def less_equal(self, x: Element, y: Element) -> bool:
        """True when ``x == y`` or ``x`` is strictly below ``y``."""
        return x == y or self.less(x, y)

    def comparable(self, x: Element, y: Element) -> bool:
        """True when ``x < y`` or ``y < x`` (distinct comparable pair)."""
        i = self._require(x)
        j = self._require(y)
        above = self._above_bits
        return (above[i] >> j) & 1 == 1 or (above[j] >> i) & 1 == 1

    def concurrent(self, x: Element, y: Element) -> bool:
        """True when ``x`` and ``y`` are distinct and incomparable.

        This is the ``m1 ‖ m2`` relation of Section 2.
        """
        self._require(x)
        self._require(y)
        return x != y and not self.comparable(x, y)

    # ------------------------------------------------------------------
    # Bitmask kernel access
    # ------------------------------------------------------------------
    def above_bit_rows(self) -> Tuple[int, ...]:
        """The strict order as bitmask rows by insertion position.

        Bit ``j`` of row ``i`` is set exactly when
        ``elements[i] < elements[j]``.  The chain machinery
        (:mod:`repro.core.chains`, :mod:`repro.core.linear_extensions`)
        and the encoding checker consume these rows directly instead of
        re-deriving per-pair adjacency through :meth:`less`.
        """
        return tuple(self._above_bits)

    def below_bit_rows(self) -> Tuple[int, ...]:
        """Transpose of :meth:`above_bit_rows` (strict predecessors)."""
        return tuple(self._below_bits)

    def cover_bit_rows(self) -> Tuple[int, ...]:
        """The covering relation as bitmask rows (cached, see
        :meth:`cover_pairs`).

        A topological sort driven off these rows visits elements in the
        same order as one driven off the full closure — the last-placed
        predecessor of any element is always one of its covers — which
        is what lets the realizer construction sweep O(covers) edges per
        extension instead of O(ordered pairs).
        """
        return tuple(self._cover_rows())

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def _members(self, mask: int) -> FrozenSet[Element]:
        elements = self._elements
        return frozenset(elements[b] for b in iter_bits(mask))

    def strictly_below(self, element: Element) -> FrozenSet[Element]:
        """All elements strictly less than ``element``."""
        return self._members(self._below_bits[self._require(element)])

    def strictly_above(self, element: Element) -> FrozenSet[Element]:
        """All elements strictly greater than ``element``."""
        return self._members(self._above_bits[self._require(element)])

    def successor_index(self) -> Tuple[Tuple[int, ...], ...]:
        """The strict order as insertion-index adjacency, cached.

        ``successor_index()[i]`` lists (sorted ascending) the insertion
        indices of every element strictly above ``elements[i]``.  Kept
        for callers that want explicit adjacency lists; the bitmask rows
        (:meth:`above_bit_rows`) carry the same information without
        materializing the tuples.
        """
        cached = self._succ_index
        if cached is None:
            cached = tuple(
                tuple(iter_bits(row)) for row in self._above_bits
            )
            self._succ_index = cached
        return cached

    def down_set(self, element: Element) -> FrozenSet[Element]:
        """The principal ideal: ``element`` and all elements below it."""
        position = self._require(element)
        return self._members(self._below_bits[position] | (1 << position))

    def up_set(self, element: Element) -> FrozenSet[Element]:
        """The principal filter: ``element`` and all elements above it."""
        position = self._require(element)
        return self._members(self._above_bits[position] | (1 << position))

    def minimal_elements(self) -> List[Element]:
        """Elements with nothing below them.

        The paper calls such messages *minimal messages* in the induction
        of Theorem 4.
        """
        below = self._below_bits
        return [
            e for i, e in enumerate(self._elements) if not below[i]
        ]

    def maximal_elements(self) -> List[Element]:
        """Elements with nothing above them."""
        above = self._above_bits
        return [
            e for i, e in enumerate(self._elements) if not above[i]
        ]

    def _cover_rows(self) -> List[int]:
        """Bitmask rows of the covering relation, cached.

        Row ``i`` keeps exactly the successors of ``elements[i]`` that
        are not reachable through another successor: subtract the union
        of the successors' own up-rows.  Processing the row low-bit
        first lets already-reached successors be skipped, so each row
        costs roughly one word-parallel OR per cover when the insertion
        order respects the order (as message posets do).
        """
        cached = self._cover_bits
        if cached is None:
            above = self._above_bits
            cached = []
            for row in above:
                reach = 0
                m = row
                while m:
                    low = m & -m
                    reach |= above[low.bit_length() - 1]
                    m = (m ^ low) & ~reach
                cached.append(row & ~reach)
            self._cover_bits = cached
        return cached

    def cover_pairs(self) -> List[Tuple[Element, Element]]:
        """The transitive reduction as ``(lower, upper)`` pairs, cached.

        ``y`` covers ``x`` when ``x < y`` and no ``z`` has ``x < z < y``.
        Posets are immutable, so the reduction is computed once and
        shared by drawing, checking, and the decomposition demos.
        """
        cached = self._cover_pair_cache
        if cached is None:
            elements = self._elements
            cached = [
                (elements[i], elements[j])
                for i, row in enumerate(self._cover_rows())
                for j in iter_bits(row)
            ]
            self._cover_pair_cache = cached
        return list(cached)

    def relation_pairs(self) -> List[Tuple[Element, Element]]:
        """Every ordered pair ``(x, y)`` with ``x < y``."""
        elements = self._elements
        return [
            (elements[i], elements[j])
            for i, row in enumerate(self._above_bits)
            for j in iter_bits(row)
        ]

    def incomparable_pairs(self) -> List[Tuple[Element, Element]]:
        """Every unordered incomparable pair, listed once (x before y)."""
        elements = self._elements
        above = self._above_bits
        below = self._below_bits
        full = (1 << len(elements)) - 1
        pairs: List[Tuple[Element, Element]] = []
        for i, x in enumerate(elements):
            mask = (full & ~(above[i] | below[i])) >> (i + 1) << (i + 1)
            for j in iter_bits(mask):
                pairs.append((x, elements[j]))
        return pairs

    def restricted_to(self, subset: Iterable[Element]) -> "Poset":
        """The induced sub-poset on ``subset``.

        The closure of an induced sub-order is the restriction of the
        closure, so the already-closed rows are compressed onto the kept
        positions directly — no re-validation, no re-closure.
        """
        keep = list(dict.fromkeys(subset))
        old_ids = [self._require(element) for element in keep]
        keep_mask = 0
        for oi in old_ids:
            keep_mask |= 1 << oi
        new_position = {oi: ni for ni, oi in enumerate(old_ids)}

        def compress(row: int) -> int:
            out = 0
            m = row & keep_mask
            while m:
                low = m & -m
                out |= 1 << new_position[low.bit_length() - 1]
                m ^= low
            return out

        above = self._above_bits
        below = self._below_bits
        return Poset._from_closed_bits(
            keep,
            [compress(above[oi]) for oi in old_ids],
            [compress(below[oi]) for oi in old_ids],
        )

    def dual(self) -> "Poset":
        """The order-reversed poset."""
        return Poset._from_closed_bits(
            list(self._elements),
            list(self._below_bits),
            list(self._above_bits),
        )

    # ------------------------------------------------------------------
    # Chains within the poset
    # ------------------------------------------------------------------
    def is_chain(self, elements: Sequence[Element]) -> bool:
        """True when the given elements are pairwise comparable.

        Runs in ``O(k log k)`` comparisons rather than ``O(k^2)``: along
        a chain the strict down-sets are nested, so sorting by down-set
        size and checking consecutive pairs suffices (two distinct
        elements with equal-sized down-sets cannot be comparable, and
        the consecutive ``less`` test rejects them).
        """
        items = list(dict.fromkeys(elements))
        ids = [self._require(element) for element in items]
        if len(ids) <= 1:
            return True
        above = self._above_bits
        below = self._below_bits
        ids.sort(key=lambda i: _popcount(below[i]))
        return all(
            (above[ids[k]] >> ids[k + 1]) & 1 for k in range(len(ids) - 1)
        )

    def is_antichain(self, elements: Sequence[Element]) -> bool:
        """True when the given elements are pairwise incomparable."""
        items = list(elements)
        if len(items) < 2:
            return True
        above = self._above_bits
        below = self._below_bits
        seen = 0
        for element in items:
            i = self._require(element)
            bit = 1 << i
            if seen & bit:  # duplicate element
                return False
            if (above[i] | below[i]) & seen:
                return False
            seen |= bit
        return True

    def longest_chain(self) -> List[Element]:
        """A longest chain, bottom to top (the poset's height witness)."""
        index = self._index
        below = self._below_bits
        best_to: List[List[Element]] = [[] for _ in self._elements]
        best: List[Element] = []
        for element in self.linear_extension():
            i = index[element]
            best_prefix: List[Element] = []
            m = below[i]
            while m:
                low = m & -m
                candidate = best_to[low.bit_length() - 1]
                if len(candidate) > len(best_prefix):
                    best_prefix = candidate
                m ^= low
            chain = best_prefix + [element]
            best_to[i] = chain
            if len(chain) > len(best):
                best = chain
        return best

    def height(self) -> int:
        """Size of the longest chain (number of elements in it)."""
        return len(self.longest_chain())

    def linear_extension(self) -> List[Element]:
        """A deterministic linear extension (topological order)."""
        order = _topological_order_positions(self._cover_rows())
        if order is None:  # pragma: no cover - construction is acyclic
            raise PosetError("closed relation unexpectedly cyclic")
        elements = self._elements
        return [elements[i] for i in order]

    # ------------------------------------------------------------------
    # Equality / presentation
    # ------------------------------------------------------------------
    def same_order_as(self, other: "Poset") -> bool:
        """True when both posets have equal element sets and equal orders."""
        if self is other:
            return True
        if self._index == other._index:
            return self._above_bits == other._above_bits
        if set(self._elements) != set(other._elements):
            return False
        return all(
            self.strictly_above(e) == other.strictly_above(e)
            for e in self._elements
        )

    def __repr__(self) -> str:
        ordered = sum(_popcount(row) for row in self._above_bits)
        return (
            f"Poset({len(self._elements)} elements, "
            f"{ordered} ordered pairs)"
        )


def close_transitive_rows(
    direct: Sequence[int],
) -> Tuple[List[int], List[int]]:
    """Transitive closure of ``direct`` as ``(above, below)`` bitmask rows.

    Processes positions in reverse topological order so each row is the
    word-parallel OR of its direct successors' rows; the below rows come
    from a forward sweep over the (cheap to transpose) direct relation.
    A cycle is detected by the topological sort running short and raises
    :class:`NotAPartialOrderError`.

    Module-level so :class:`Poset` construction and the sharded engine
    (:mod:`repro.core.parallel`, which closes forward-closed row blocks
    in block-local index space) run the exact same sweep.
    """
    order = _topological_order_positions(direct)
    if order is None:
        raise NotAPartialOrderError("relation contains a cycle")

    n = len(direct)
    above = [0] * n
    for i in reversed(order):
        row = direct[i]
        acc = row
        m = row
        while m:
            low = m & -m
            acc |= above[low.bit_length() - 1]
            m ^= low
        above[i] = acc

    direct_pred = [0] * n
    for i in range(n):
        bit = 1 << i
        m = direct[i]
        while m:
            low = m & -m
            direct_pred[low.bit_length() - 1] |= bit
            m ^= low

    below = [0] * n
    for i in order:
        row = direct_pred[i]
        acc = row
        m = row
        while m:
            low = m & -m
            acc |= below[low.bit_length() - 1]
            m ^= low
        below[i] = acc

    return above, below


def _topological_order_positions(
    succ_masks: Sequence[int],
) -> "List[int] | None":
    """Kahn's algorithm over bitmask adjacency; ``None`` on a cycle.

    Ties are broken by insertion position (the FIFO ready queue starts
    in position order and successors are appended lowest bit first),
    which makes every downstream algorithm deterministic.
    """
    n = len(succ_masks)
    indegree = [0] * n
    for mask in succ_masks:
        m = mask
        while m:
            low = m & -m
            indegree[low.bit_length() - 1] += 1
            m ^= low

    ready = [i for i in range(n) if indegree[i] == 0]
    order: List[int] = []
    position = 0
    while position < len(ready):
        current = ready[position]
        position += 1
        order.append(current)
        m = succ_masks[current]
        while m:
            low = m & -m
            j = low.bit_length() - 1
            m ^= low
            indegree[j] -= 1
            if indegree[j] == 0:
                ready.append(j)
    if len(order) != n:
        return None
    return order
