"""Finite partially ordered sets.

The paper's central object is the poset ``(M, ↦)`` formed by the messages
of a synchronous computation under the *synchronously precedes* relation.
This module provides a small, self-contained poset implementation with
exactly the operations the algorithms need:

* construction from a cover relation or from an arbitrary (acyclic)
  relation, with transitive closure computed internally;
* comparability and concurrency tests;
* minimal/maximal elements, down-sets and up-sets;
* transitive reduction (the covering relation), used for drawing and for
  efficient chain searches;
* enumeration of all ordered/incomparable pairs, used by the encoding
  checker and by the dimension machinery.

Elements may be any hashable values.  Iteration order over elements is
the insertion order, which keeps every algorithm in the library
deterministic for a fixed input.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Sequence,
    Set,
    Tuple,
)

from repro.exceptions import NotAPartialOrderError, PosetError

Element = Hashable


class Poset:
    """An irreflexive, transitive order on a finite set of elements.

    The constructor takes the *strict* order as an iterable of
    ``(smaller, larger)`` pairs; the transitive closure is computed, and
    a cycle (which would make some element smaller than itself) raises
    :class:`NotAPartialOrderError`.

    >>> p = Poset("abc", [("a", "b"), ("b", "c")])
    >>> p.less("a", "c")
    True
    >>> p.concurrent("a", "a")
    False
    """

    __slots__ = (
        "_elements",
        "_index",
        "_below",
        "_above",
        "_succ_index",
        "__weakref__",
    )

    def __init__(
        self,
        elements: Iterable[Element],
        relation: Iterable[Tuple[Element, Element]] = (),
    ):
        self._succ_index: "Tuple[Tuple[int, ...], ...] | None" = None
        self._elements: List[Element] = []
        self._index: Dict[Element, int] = {}
        for element in elements:
            if element in self._index:
                raise PosetError(f"duplicate element {element!r}")
            self._index[element] = len(self._elements)
            self._elements.append(element)

        # _below[x] = set of elements strictly below x (its down-set minus x).
        self._below: Dict[Element, Set[Element]] = {
            element: set() for element in self._elements
        }
        self._above: Dict[Element, Set[Element]] = {
            element: set() for element in self._elements
        }

        successors: Dict[Element, Set[Element]] = {
            element: set() for element in self._elements
        }
        for smaller, larger in relation:
            if smaller not in self._index:
                raise PosetError(f"unknown element {smaller!r} in relation")
            if larger not in self._index:
                raise PosetError(f"unknown element {larger!r} in relation")
            if smaller == larger:
                raise NotAPartialOrderError(
                    f"relation is not irreflexive: {smaller!r} < {smaller!r}"
                )
            successors[smaller].add(larger)

        self._close_transitively(successors)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _close_transitively(
        self, successors: Dict[Element, Set[Element]]
    ) -> None:
        """Fill ``_below``/``_above`` with the transitive closure.

        Processes elements in reverse topological order so each element's
        up-set is the union of its direct successors' up-sets.  A cycle is
        detected by the topological sort running short.
        """
        order = _topological_order(self._elements, successors)
        if order is None:
            raise NotAPartialOrderError("relation contains a cycle")

        strictly_above: Dict[Element, Set[Element]] = {}
        for element in reversed(order):
            above: Set[Element] = set()
            for succ in successors[element]:
                above.add(succ)
                above.update(strictly_above[succ])
            strictly_above[element] = above

        for element, above in strictly_above.items():
            self._above[element] = above
            for other in above:
                self._below[other].add(element)

    @classmethod
    def from_cover_relation(
        cls,
        elements: Iterable[Element],
        covers: Iterable[Tuple[Element, Element]],
    ) -> "Poset":
        """Build a poset from its covering (Hasse diagram) relation."""
        return cls(elements, covers)

    @classmethod
    def chain(cls, elements: Sequence[Element]) -> "Poset":
        """A totally ordered poset in the order of ``elements``."""
        pairs = [
            (elements[i], elements[i + 1]) for i in range(len(elements) - 1)
        ]
        return cls(elements, pairs)

    @classmethod
    def antichain(cls, elements: Iterable[Element]) -> "Poset":
        """A poset in which every pair of elements is incomparable."""
        return cls(elements, ())

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements)

    def __contains__(self, element: Element) -> bool:
        return element in self._index

    @property
    def elements(self) -> Tuple[Element, ...]:
        """The elements in insertion order."""
        return tuple(self._elements)

    def _require(self, element: Element) -> None:
        if element not in self._index:
            raise PosetError(f"element {element!r} not in poset")

    def less(self, x: Element, y: Element) -> bool:
        """True when ``x`` is strictly below ``y``."""
        self._require(x)
        self._require(y)
        return y in self._above[x]

    def less_equal(self, x: Element, y: Element) -> bool:
        """True when ``x == y`` or ``x`` is strictly below ``y``."""
        return x == y or self.less(x, y)

    def comparable(self, x: Element, y: Element) -> bool:
        """True when ``x < y`` or ``y < x`` (distinct comparable pair)."""
        return self.less(x, y) or self.less(y, x)

    def concurrent(self, x: Element, y: Element) -> bool:
        """True when ``x`` and ``y`` are distinct and incomparable.

        This is the ``m1 ‖ m2`` relation of Section 2.
        """
        self._require(x)
        self._require(y)
        return x != y and not self.comparable(x, y)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def strictly_below(self, element: Element) -> FrozenSet[Element]:
        """All elements strictly less than ``element``."""
        self._require(element)
        return frozenset(self._below[element])

    def strictly_above(self, element: Element) -> FrozenSet[Element]:
        """All elements strictly greater than ``element``."""
        self._require(element)
        return frozenset(self._above[element])

    def successor_index(self) -> Tuple[Tuple[int, ...], ...]:
        """The strict order as insertion-index adjacency, cached.

        ``successor_index()[i]`` lists (sorted ascending) the insertion
        indices of every element strictly above ``elements[i]``.  The
        structure is computed once per poset and shared by the chain
        machinery (matching, linear extensions), which would otherwise
        rebuild it — and re-hash every element — on each call.
        """
        cached = self._succ_index
        if cached is None:
            index = self._index
            cached = tuple(
                tuple(sorted(index[y] for y in self._above[x]))
                for x in self._elements
            )
            self._succ_index = cached
        return cached

    def down_set(self, element: Element) -> FrozenSet[Element]:
        """The principal ideal: ``element`` and all elements below it."""
        return self.strictly_below(element) | {element}

    def up_set(self, element: Element) -> FrozenSet[Element]:
        """The principal filter: ``element`` and all elements above it."""
        return self.strictly_above(element) | {element}

    def minimal_elements(self) -> List[Element]:
        """Elements with nothing below them.

        The paper calls such messages *minimal messages* in the induction
        of Theorem 4.
        """
        return [e for e in self._elements if not self._below[e]]

    def maximal_elements(self) -> List[Element]:
        """Elements with nothing above them."""
        return [e for e in self._elements if not self._above[e]]

    def cover_pairs(self) -> List[Tuple[Element, Element]]:
        """The transitive reduction as ``(lower, upper)`` pairs.

        ``y`` covers ``x`` when ``x < y`` and no ``z`` has ``x < z < y``.
        """
        covers: List[Tuple[Element, Element]] = []
        for x in self._elements:
            above_x = self._above[x]
            for y in self._elements:
                if y not in above_x:
                    continue
                if any(z in above_x and y in self._above[z] for z in above_x):
                    continue
                covers.append((x, y))
        return covers

    def relation_pairs(self) -> List[Tuple[Element, Element]]:
        """Every ordered pair ``(x, y)`` with ``x < y``."""
        pairs: List[Tuple[Element, Element]] = []
        for x in self._elements:
            for y in self._elements:
                if y in self._above[x]:
                    pairs.append((x, y))
        return pairs

    def incomparable_pairs(self) -> List[Tuple[Element, Element]]:
        """Every unordered incomparable pair, listed once (x before y)."""
        pairs: List[Tuple[Element, Element]] = []
        for i, x in enumerate(self._elements):
            for y in self._elements[i + 1 :]:
                if not self.comparable(x, y):
                    pairs.append((x, y))
        return pairs

    def restricted_to(self, subset: Iterable[Element]) -> "Poset":
        """The induced sub-poset on ``subset``."""
        keep = list(dict.fromkeys(subset))
        keep_set = set(keep)
        for element in keep:
            self._require(element)
        pairs = [
            (x, y)
            for x in keep
            for y in self._above[x]
            if y in keep_set
        ]
        return Poset(keep, pairs)

    def dual(self) -> "Poset":
        """The order-reversed poset."""
        pairs = [(y, x) for (x, y) in self.relation_pairs()]
        return Poset(self._elements, pairs)

    # ------------------------------------------------------------------
    # Chains within the poset
    # ------------------------------------------------------------------
    def is_chain(self, elements: Sequence[Element]) -> bool:
        """True when the given elements are pairwise comparable.

        Runs in ``O(k log k)`` comparisons rather than ``O(k^2)``: along
        a chain the strict down-sets are nested, so sorting by down-set
        size and checking consecutive pairs suffices (two distinct
        elements with equal-sized down-sets cannot be comparable, and
        the consecutive ``less`` test rejects them).
        """
        items = list(dict.fromkeys(elements))
        for element in items:
            self._require(element)
        if len(items) <= 1:
            return True
        items.sort(key=lambda e: len(self._below[e]))
        return all(
            self.less(items[i], items[i + 1]) for i in range(len(items) - 1)
        )

    def is_antichain(self, elements: Sequence[Element]) -> bool:
        """True when the given elements are pairwise incomparable."""
        items = list(elements)
        return all(
            not self.comparable(items[i], items[j]) and items[i] != items[j]
            for i in range(len(items))
            for j in range(i + 1, len(items))
        )

    def longest_chain(self) -> List[Element]:
        """A longest chain, bottom to top (the poset's height witness)."""
        best_to: Dict[Element, List[Element]] = {}
        for element in self.linear_extension():
            best_prefix: List[Element] = []
            for lower in self._below[element]:
                candidate = best_to[lower]
                if len(candidate) > len(best_prefix):
                    best_prefix = candidate
            best_to[element] = best_prefix + [element]
        if not best_to:
            return []
        return max(best_to.values(), key=len)

    def height(self) -> int:
        """Size of the longest chain (number of elements in it)."""
        return len(self.longest_chain())

    def linear_extension(self) -> List[Element]:
        """A deterministic linear extension (topological order)."""
        successors = {e: set(self._cover_successors(e)) for e in self._elements}
        order = _topological_order(self._elements, successors)
        assert order is not None  # construction guaranteed acyclicity
        return order

    def _cover_successors(self, element: Element) -> List[Element]:
        above = self._above[element]
        return [
            y
            for y in above
            if not any(z in above and y in self._above[z] for z in above)
        ]

    # ------------------------------------------------------------------
    # Equality / presentation
    # ------------------------------------------------------------------
    def same_order_as(self, other: "Poset") -> bool:
        """True when both posets have equal element sets and equal orders."""
        if set(self._elements) != set(other._elements):
            return False
        return all(
            self._above[e] == other._above[e] for e in self._elements
        )

    def __repr__(self) -> str:
        return (
            f"Poset({len(self._elements)} elements, "
            f"{len(self.relation_pairs())} ordered pairs)"
        )


def _topological_order(
    elements: Sequence[Element],
    successors: Dict[Element, Set[Element]],
) -> "List[Element] | None":
    """Kahn's algorithm; returns ``None`` when the relation has a cycle.

    Ties are broken by insertion order of ``elements``, which makes every
    downstream algorithm deterministic.
    """
    index = {element: position for position, element in enumerate(elements)}
    indegree: Dict[Element, int] = {e: 0 for e in elements}
    for element in elements:
        for succ in successors.get(element, ()):
            indegree[succ] += 1

    ready = [e for e in elements if indegree[e] == 0]
    order: List[Element] = []
    position = 0
    while position < len(ready):
        current = ready[position]
        position += 1
        order.append(current)
        for succ in sorted(successors.get(current, ()), key=index.__getitem__):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if len(order) != len(elements):
        return None
    return order
