"""Chain-indexed bitset kernel for the lattice of order ideals.

Mattern's observation (see :mod:`repro.core.ideals`) identifies the
consistent global states of a computation with the order ideals of its
message poset.  Theorem 8 bounds the width of ``(M, ↦)`` by
``floor(N/2)``, so by Dilworth the poset splits into at most
``floor(N/2)`` chains — and an ideal, intersected with a chain, is a
*prefix* of that chain.  Every ideal is therefore uniquely a tuple of
per-chain prefix lengths: the lattice embeds into a product of at most
``floor(N/2)`` chains, exactly the compact-clock structure Zheng & Garg
exploit for multithreaded vector clocks.

This module drives that embedding with the bitset kernel of
:mod:`repro.core.poset`.  An ideal is an ``int`` bitmask over the
poset's insertion positions, and the whole lattice is walked by a
**chain-indexed successor rule**:

* a candidate extension is the next unconsumed element ``e`` of some
  chain (one ``int`` of candidate bits per ideal);
* ``e`` is *addable* exactly when ``below_bits[e] & ~ideal_mask == 0``
  — one word-parallel AND against the kernel's closed rows;
* of the addable extensions, ``e`` spawns a child exactly when no
  *maximal* prefix top on a higher-indexed chain would stay maximal
  beside it (``live_tops & higher[e] & ~below_bits[e] == 0``) — the
  rule that makes the traversal a spanning *tree* of the lattice, so
  every ideal is produced exactly once with no visited-set.

Per ideal the work is O(width) big-int operations — no frozensets, no
per-layer dedup, no hashing — which is what turns the previously
exponential-with-a-huge-constant layered BFS of
:func:`repro.core.ideals.ideals_reference` into a memory-light
traversal that counts ``2^16`` global states in well under a second.

The canonical enumeration order ("chain-prefix order") is depth-first
preorder, children by ascending insertion position of the added
element.  It is deterministic for a fixed poset;
:func:`repro.core.ideals.all_ideals` layers it by cardinality for
public parity with the historical contract.

Interval queries (:func:`ideal_masks_between`) restrict the same
machinery to the sublattice ``[lower, upper]``, which is how recovery
(:mod:`repro.apps.recovery`) measures the state space that survives a
crash without materializing it.
"""

from __future__ import annotations

import time
import weakref
from typing import FrozenSet, Hashable, Iterable, Iterator, List, Tuple

from repro.core.chains import minimum_chain_partition
from repro.core.poset import Poset, iter_bits
from repro.exceptions import PosetError
from repro.obs import instrument

Element = Hashable

try:  # Python >= 3.10
    popcount = int.bit_count
except AttributeError:  # pragma: no cover - 3.9 fallback
    def popcount(value: int) -> int:
        return bin(value).count("1")

#: Sentinel in ``chain_next`` for "top of its chain".
_NO_NEXT = -1


class LatticeIndex:
    """Per-poset precomputation behind the ideal traversal.

    Holds the minimum chain partition (indices, not elements), the
    kernel's closed bitmask rows, and the per-element successor/
    higher-chain masks the traversal consumes.  Built once per poset
    and cached weakly (:func:`lattice_index`), like the comparability
    matcher in :mod:`repro.core.chains` — whose solved matching this
    construction reuses.
    """

    __slots__ = (
        "poset",
        "elements",
        "positions",
        "below",
        "above",
        "full_mask",
        "chains",
        "chain_next",
        "higher",
        "first_mask",
        "__weakref__",
    )

    def __init__(self, poset: Poset):
        self.poset = poset
        self.elements: Tuple[Element, ...] = poset.elements
        self.positions = {e: i for i, e in enumerate(self.elements)}
        self.below: Tuple[int, ...] = poset.below_bit_rows()
        self.above: Tuple[int, ...] = poset.above_bit_rows()
        n = len(self.elements)
        self.full_mask = (1 << n) - 1

        positions = self.positions
        self.chains: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(positions[e] for e in chain)
            for chain in minimum_chain_partition(poset)
        )
        (
            self.chain_next,
            self.higher,
            self.first_mask,
        ) = _chain_tables(n, self.chains)


def _chain_tables(
    n: int, chains: Tuple[Tuple[int, ...], ...]
) -> Tuple[List[int], List[int], int]:
    """``(chain_next, higher, first_mask)`` for a chain partition.

    ``chain_next[e]`` is the position following ``e`` on its chain (or
    :data:`_NO_NEXT`), ``higher[e]`` is the bitmask of every element
    sitting on a chain with a strictly larger index than ``e``'s, and
    ``first_mask`` has one bit per chain: its bottom element.
    """
    chain_next = [_NO_NEXT] * n
    # Elements on no chain (outside a restricted universe) keep -1 and
    # land on suffix[0]; they are never candidates, so the value is
    # irrelevant — it just has to be a valid index.
    chain_of = [-1] * n
    chain_masks = []
    first_mask = 0
    for ci, chain in enumerate(chains):
        mask = 0
        for k, e in enumerate(chain):
            chain_of[e] = ci
            mask |= 1 << e
            if k + 1 < len(chain):
                chain_next[e] = chain[k + 1]
        chain_masks.append(mask)
        if chain:
            first_mask |= 1 << chain[0]

    # suffix[c] = union of the chain masks with index > c.
    suffix = [0] * (len(chains) + 1)
    for ci in range(len(chains) - 1, -1, -1):
        suffix[ci] = suffix[ci + 1] | chain_masks[ci]
    higher = [suffix[chain_of[e] + 1] for e in range(n)]
    return chain_next, higher, first_mask


_INDEX_CACHE: "weakref.WeakKeyDictionary[Poset, LatticeIndex]" = (
    weakref.WeakKeyDictionary()
)


def lattice_index(poset: Poset) -> LatticeIndex:
    """The cached :class:`LatticeIndex` of ``poset``."""
    index = _INDEX_CACHE.get(poset)
    if index is None:
        index = LatticeIndex(poset)
        _INDEX_CACHE[poset] = index
    return index


# ----------------------------------------------------------------------
# Mask <-> element-set bridge
# ----------------------------------------------------------------------
def mask_of(
    poset: Poset, members: Iterable[Element], strict: bool = True
) -> int:
    """The bitmask of ``members`` over the poset's insertion positions.

    With ``strict`` (the default) an element outside the poset raises
    :class:`PosetError`; otherwise foreign elements are ignored, which
    is how tolerant callers (frontier extraction) fold arbitrary sets
    onto the kernel.
    """
    positions = lattice_index(poset).positions
    mask = 0
    for element in members:
        position = positions.get(element)
        if position is None:
            if strict:
                raise PosetError(f"element {element!r} not in poset")
            continue
        mask |= 1 << position
    return mask


def members_of_mask(poset: Poset, mask: int) -> FrozenSet[Element]:
    """The frozenset of elements whose position bits are set."""
    elements = lattice_index(poset).elements
    return frozenset(elements[b] for b in iter_bits(mask))


def is_ideal_mask(poset: Poset, mask: int) -> bool:
    """True when ``mask`` is a down-set of the poset.

    One closed-row AND per member: ``below_bits[e] & ~mask == 0``.
    """
    below = lattice_index(poset).below
    missing = ~mask
    m = mask
    while m:
        low = m & -m
        if below[low.bit_length() - 1] & missing:
            return False
        m ^= low
    return True


# ----------------------------------------------------------------------
# Traversal
# ----------------------------------------------------------------------
def _record_traversal(produced: int, started: float) -> None:
    bundle = instrument.metrics
    if bundle is not None:
        bundle.lattice_ideals_enumerated.inc(produced)
        bundle.lattice_enumeration_seconds.observe(
            time.perf_counter() - started
        )


def _limit_error(limit: int, what: str = "poset") -> PosetError:
    return PosetError(
        f"{what} has more than {limit} ideals; raise the limit"
    )


def _iter_masks(
    below,
    higher,
    chain_next,
    base_mask: int,
    universe: int,
    first_mask: int,
) -> Iterator[int]:
    """DFS preorder over the lattice spanning tree (module docstring).

    Yields each ideal's bitmask exactly once, ``base_mask`` first.  The
    stack holds ``(mask, next_mask, live_tops)`` triples: the ideal,
    the next unconsumed element of every chain, and the prefix tops
    still maximal in the ideal.  Candidates are scanned from the
    highest position down so the LIFO pop order visits children by
    ascending position.
    """
    stack = [(base_mask, first_mask, 0)]
    while stack:
        mask, next_mask, live = stack.pop()
        yield mask
        comp = universe & ~mask
        m = next_mask
        while m:
            e = m.bit_length() - 1
            bit = 1 << e
            m ^= bit
            row = below[e]
            if row & comp:
                continue  # a predecessor is still missing
            if live & higher[e] & ~row:
                continue  # a higher chain's top survives: not canonical
            nxt = chain_next[e]
            child_next = next_mask ^ bit
            if nxt != _NO_NEXT:
                child_next |= 1 << nxt
            stack.append((mask | bit, child_next, (live & ~row) | bit))


def iterate_ideal_masks(
    poset: Poset, limit: "int | None" = None
) -> Iterator[int]:
    """Every ideal of ``poset`` as a bitmask, in chain-prefix order.

    Raises :class:`PosetError` when more than ``limit`` ideals would be
    produced (checked lazily, after ``limit`` masks were yielded).
    """
    index = lattice_index(poset)
    started = time.perf_counter()
    produced = 0
    try:
        for mask in _iter_masks(
            index.below,
            index.higher,
            index.chain_next,
            0,
            index.full_mask,
            index.first_mask,
        ):
            produced += 1
            if limit is not None and produced > limit:
                raise _limit_error(limit)
            yield mask
    finally:
        _record_traversal(produced, started)


def count_ideals(poset: Poset, limit: "int | None" = None) -> int:
    """The number of ideals, counted without materializing any of them.

    Same traversal as :func:`iterate_ideal_masks` but with the yield
    machinery, child ordering, and mask collection all stripped: the
    hot loop touches three ints per ideal and never allocates a set.
    Raises :class:`PosetError` past ``limit``.
    """
    index = lattice_index(poset)
    return _count_masks(
        index.below,
        index.higher,
        index.chain_next,
        0,
        index.full_mask,
        index.first_mask,
        limit,
        "poset",
    )


def _count_masks(
    below,
    higher,
    chain_next,
    base_mask: int,
    universe: int,
    first_mask: int,
    limit: "int | None",
    what: str,
) -> int:
    started = time.perf_counter()
    count = 0
    stack = [(base_mask, first_mask, 0)]
    try:
        while stack:
            mask, next_mask, live = stack.pop()
            count += 1
            if limit is not None and count > limit:
                raise _limit_error(limit, what)
            comp = universe & ~mask
            m = next_mask
            while m:
                e = m.bit_length() - 1
                bit = 1 << e
                m ^= bit
                row = below[e]
                if row & comp:
                    continue
                if live & higher[e] & ~row:
                    continue
                nxt = chain_next[e]
                child_next = next_mask ^ bit
                if nxt != _NO_NEXT:
                    child_next |= 1 << nxt
                stack.append(
                    (mask | bit, child_next, (live & ~row) | bit)
                )
    finally:
        _record_traversal(count, started)
    return count


# ----------------------------------------------------------------------
# Interval queries
# ----------------------------------------------------------------------
def _interval_tables(index: LatticeIndex, lower: int, upper: int):
    """Restricted ``(chain_next, higher, first_mask, universe)``.

    The ideals in ``[lower, upper]`` are ``lower`` unioned with the
    ideals of the sub-poset induced on ``upper & ~lower`` (everything
    below an element of ``upper`` already lies in ``upper``, and no
    element of ``lower`` sits above one outside it), so the global
    chain partition restricted to that window is again a chain
    partition of exactly the elements the traversal may add.
    """
    full = index.full_mask
    if lower & ~full or upper & ~full:
        raise PosetError("interval bound has bits outside the poset")
    if lower & ~upper:
        raise PosetError("interval lower bound is not below upper bound")
    for name, bound in (("lower", lower), ("upper", upper)):
        if not is_ideal_mask(index.poset, bound):
            raise PosetError(
                f"interval {name} bound is not an ideal (down-set)"
            )
    universe = upper & ~lower
    if universe == full:
        return index.chain_next, index.higher, index.first_mask, universe
    n = len(index.elements)
    chains = tuple(
        restricted
        for restricted in (
            tuple(e for e in chain if (universe >> e) & 1)
            for chain in index.chains
        )
        if restricted
    )
    chain_next, higher, first_mask = _chain_tables(n, chains)
    return chain_next, higher, first_mask, universe


def ideal_masks_between(
    poset: Poset,
    lower: int,
    upper: int,
    limit: "int | None" = None,
) -> Iterator[int]:
    """Every ideal ``I`` with ``lower <= I <= upper``, as bitmasks.

    Both bounds must themselves be ideals (checked); the traversal then
    never leaves the sublattice, so the cost is proportional to the
    interval's size, not the whole lattice's.  Order is the chain-
    prefix order of the restricted traversal, ``lower`` first.
    """
    index = lattice_index(poset)
    chain_next, higher, first_mask, universe = _interval_tables(
        index, lower, upper
    )
    started = time.perf_counter()
    produced = 0
    try:
        for mask in _iter_masks(
            index.below, higher, chain_next, lower, universe, first_mask
        ):
            produced += 1
            if limit is not None and produced > limit:
                raise _limit_error(limit, "interval")
            yield mask
    finally:
        _record_traversal(produced, started)


def count_ideals_between(
    poset: Poset,
    lower: int,
    upper: int,
    limit: "int | None" = None,
) -> int:
    """``len(list(ideal_masks_between(...)))`` without materializing."""
    index = lattice_index(poset)
    chain_next, higher, first_mask, universe = _interval_tables(
        index, lower, upper
    )
    return _count_masks(
        index.below,
        higher,
        chain_next,
        lower,
        universe,
        first_mask,
        limit,
        "interval",
    )
