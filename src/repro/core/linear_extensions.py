"""Linear extensions and chain realizers.

The offline algorithm (Figure 9 of the paper) timestamps messages with
their ranks in a family of linear extensions whose intersection is the
message order — a *realizer*.  The paper obtains a realizer of size
``width(P)`` from Dilworth's theorem; this module provides the
constructive version:

**Chain-forcing lemma.**  For a chain ``C`` of poset ``P``, the relation
``P ∪ {(x, c) : c ∈ C, x ‖ c}`` is acyclic.  *Proof sketch:* any cycle
would alternate order-paths of ``P`` with forced edges into ``C``, and
the index along ``C`` strictly increases at every forced edge (if
``c_i ≤ x`` and the next forced edge is ``x → c_j`` then ``x ‖ c_j``
forbids ``c_j ≤ x``, hence ``j > i``), so the cycle cannot close.  A
topological sort of the augmented relation is therefore a linear
extension of ``P`` in which every element of ``C`` sits **above**
everything incomparable to it.

Given a chain partition ``C_1 .. C_w``, the family of such forced
extensions is a realizer: an incomparable pair ``{x, y}`` with
``x ∈ C_i`` and ``y ∈ C_j`` is reversed between ``L_i`` (where ``x`` is
above ``y``) and ``L_j`` (where ``y`` is above ``x``).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterator, List, Sequence, Set, Tuple

from repro.core.chains import minimum_chain_partition
from repro.core.poset import Poset, _popcount
from repro.exceptions import NotALinearExtensionError, PosetError

Element = Hashable


def is_linear_extension(poset: Poset, sequence: Sequence[Element]) -> bool:
    """True when ``sequence`` lists every element once, respecting the order."""
    items = list(sequence)
    if len(items) != len(poset) or set(items) != set(poset.elements):
        return False
    position = {element: i for i, element in enumerate(items)}
    return all(
        position[x] < position[y] for (x, y) in poset.relation_pairs()
    )


def check_linear_extension(poset: Poset, sequence: Sequence[Element]) -> None:
    """Raise :class:`NotALinearExtensionError` when the check fails."""
    if not is_linear_extension(poset, sequence):
        raise NotALinearExtensionError(
            f"sequence of length {len(list(sequence))} is not a linear "
            f"extension of {poset!r}"
        )


def all_linear_extensions(poset: Poset) -> Iterator[List[Element]]:
    """Yield every linear extension (exponential; small posets only).

    Used by the brute-force dimension computation in
    :mod:`repro.core.dimension` and by tests as an oracle.
    """
    elements = list(poset.elements)
    below: Dict[Element, Set[Element]] = {
        e: set(poset.strictly_below(e)) for e in elements
    }

    def _extend(prefix: List[Element], remaining: Set[Element]):
        if not remaining:
            yield list(prefix)
            return
        placed = set(prefix)
        for element in elements:
            if element in remaining and below[element] <= placed:
                prefix.append(element)
                remaining.remove(element)
                yield from _extend(prefix, remaining)
                remaining.add(element)
                prefix.pop()

    yield from _extend([], set(elements))


def count_linear_extensions(poset: Poset, limit: int = 10_000_000) -> int:
    """Count linear extensions (stops early at ``limit``)."""
    count = 0
    for _ in all_linear_extensions(poset):
        count += 1
        if count >= limit:
            return count
    return count


def chain_forced_extension(
    poset: Poset, chain: Sequence[Element]
) -> List[Element]:
    """A linear extension placing every element of ``chain`` above all
    elements incomparable to it (the chain-forcing lemma above).

    ``chain`` must be a chain of ``poset``; it may be given in any order.
    """
    items = list(chain)
    for element in items:
        if element not in poset:
            raise PosetError(f"chain element {element!r} not in poset")
    if not poset.is_chain(items):
        raise PosetError("chain_forced_extension requires a chain")

    # Deferred-chain Kahn's algorithm over the poset's closed order.
    # Materializing the forced edges ``x -> c`` (x incomparable to chain
    # element c) is O(n * |C|); instead observe that in the augmented
    # graph a chain element c has indegree
    # ``|below(c)| + |incomp(c)| = n - 1 - |above(c)|``, so c becomes
    # ready exactly when ``len(order) == n - 1 - |above(c)|`` — and at
    # that moment nothing else can be ready (anything unplaced is above
    # c and hence still blocked by c).  Since the chain is totally
    # ordered, at most one chain element is ever waiting on that
    # condition, so a single ``stalled`` slot suffices and the emitted
    # order is identical to a topological sort of the full augmented
    # relation.
    #
    # Bitset-backed posets drive the sweep off their bitmask rows
    # (indegrees are popcounts, successor visits are bit extractions in
    # the same ascending order); other posets use the cached successor
    # index.  Both paths emit the identical extension.
    elements = poset.elements
    n = len(elements)
    element_index = {e: i for i, e in enumerate(elements)}
    in_chain = [False] * n
    for element in items:
        in_chain[element_index[element]] = True

    rows_accessor = getattr(poset, "above_bit_rows", None)
    if rows_accessor is not None:
        # Sweep the cover rows, not the closure: for a transitively
        # closed order the FIFO Kahn orders coincide (an element's
        # last-placed predecessor is always one of its covers, and
        # newly-ready elements append in the same ascending order), and
        # the cover sweep touches O(covers) edges per extension.  The
        # stall thresholds still come from the closure row popcounts.
        above = rows_accessor()
        cover_rows = poset.cover_bit_rows()
        out_count = [_popcount(row) for row in above]
        indegree = [0] * n
        for row in cover_rows:
            m = row
            while m:
                low = m & -m
                indegree[low.bit_length() - 1] += 1
                m ^= low
        succ_rows: "Sequence[int] | None" = cover_rows
        succ = None
    else:
        succ = poset.successor_index()
        succ_rows = None
        indegree = [0] * n
        for row in succ:
            for j in row:
                indegree[j] += 1
        out_count = [len(row) for row in succ]

    def _chain_threshold(i: int) -> int:
        return n - 1 - out_count[i]

    stalled = -1
    ready: deque = deque()
    for i in range(n):
        if indegree[i] == 0:
            if in_chain[i] and _chain_threshold(i) != 0:
                stalled = i
            else:
                ready.append(i)

    order_ids: List[int] = []
    while ready or stalled != -1:
        if stalled != -1 and len(order_ids) == _chain_threshold(stalled):
            current = stalled
            stalled = -1
        elif ready:
            current = ready.popleft()
        else:  # pragma: no cover - excluded by the chain-forcing lemma
            raise PosetError("chain-forced relation unexpectedly cyclic")
        order_ids.append(current)
        placed = len(order_ids)
        if succ_rows is not None:
            m = succ_rows[current]
            while m:
                low = m & -m
                j = low.bit_length() - 1
                m ^= low
                indegree[j] -= 1
                if indegree[j] == 0:
                    if in_chain[j] and _chain_threshold(j) != placed:
                        stalled = j
                    else:
                        ready.append(j)
        else:
            for j in succ[current]:
                indegree[j] -= 1
                if indegree[j] == 0:
                    if in_chain[j] and _chain_threshold(j) != placed:
                        stalled = j
                    else:
                        ready.append(j)
    return [elements[i] for i in order_ids]


def realizer_from_chain_partition(
    poset: Poset, chains: Sequence[Sequence[Element]]
) -> List[List[Element]]:
    """A realizer with one forced extension per chain of the partition.

    When the partition has a single chain the poset is totally ordered
    and the single extension *is* the order, so the family is still a
    realizer.
    """
    if not chains:
        if len(poset) == 0:
            return [[]]
        raise PosetError("empty chain family for a non-empty poset")
    return [chain_forced_extension(poset, chain) for chain in chains]


def minimum_width_realizer(poset: Poset) -> List[List[Element]]:
    """Realizer of size ``width(poset)`` via minimum chain partition.

    This is the constructive engine behind the offline algorithm: the
    returned family has exactly ``width(P)`` extensions, matching the
    ``dim(P) <= width(P)`` bound the paper invokes from Dilworth's
    theorem.
    """
    if len(poset) == 0:
        return [[]]
    chains = minimum_chain_partition(poset)
    return realizer_from_chain_partition(poset, chains)


def intersection_of_extensions(
    elements: Sequence[Element], extensions: Sequence[Sequence[Element]]
) -> Poset:
    """The poset whose order is the intersection of the given total orders."""
    if not extensions:
        raise PosetError("need at least one linear extension")
    positions = []
    for extension in extensions:
        if set(extension) != set(elements) or len(extension) != len(
            list(elements)
        ):
            raise NotALinearExtensionError(
                "extension does not list exactly the given elements"
            )
        positions.append({e: i for i, e in enumerate(extension)})

    pairs: List[Tuple[Element, Element]] = []
    items = list(elements)
    for x in items:
        for y in items:
            if x is y or x == y:
                continue
            if all(pos[x] < pos[y] for pos in positions):
                pairs.append((x, y))
    return Poset(items, pairs)


def is_realizer(
    poset: Poset, extensions: Sequence[Sequence[Element]]
) -> bool:
    """True when the extensions are all linear extensions of ``poset``
    and their intersection equals the order of ``poset``."""
    for extension in extensions:
        if not is_linear_extension(poset, extension):
            return False
    rebuilt = intersection_of_extensions(list(poset.elements), extensions)
    return rebuilt.same_order_as(poset)


def ranks_in_extension(extension: Sequence[Element]) -> Dict[Element, int]:
    """Map each element to the number of elements before it (its rank).

    Step (3) of the offline algorithm: "``V_m[i]`` is the number of
    elements less than ``m`` in ``L_i``".
    """
    return {element: i for i, element in enumerate(extension)}
