"""Chains, antichains, width, and minimum chain partitions.

Theorem 8 of the paper bounds the *width* of the message poset of a
synchronous computation by ``floor(N/2)`` and then invokes Dilworth's
theorem (``dim(P) <= width(P)``) to obtain the offline algorithm.  The
constructive ingredient is a **minimum chain partition**, which this
module computes with the classical reduction to maximum bipartite
matching (Fulkerson):

    minimum number of chains covering P  =  |P| - maximum matching

in the bipartite graph with a left and a right copy of every element and
an edge ``x_left — y_right`` whenever ``x < y``.  The matching is found
with our own Hopcroft–Karp implementation — no external graph library is
involved.

The module also extracts a *maximum antichain* (the width witness) from a
minimum vertex cover via Kőnig's theorem, and offers a greedy
longest-chain-peeling partition used by the ablation benchmarks.
"""

from __future__ import annotations

import sys
from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.poset import Poset

Element = Hashable

_UNMATCHED = object()


class BipartiteMatcher:
    """Hopcroft–Karp maximum matching on an explicit bipartite graph.

    ``adjacency`` maps each left vertex to the iterable of right vertices
    it may be matched with.  Left and right vertex sets may overlap as
    Python values; they are treated as disjoint sides.
    """

    def __init__(
        self,
        left: Sequence[Element],
        right: Sequence[Element],
        adjacency: Dict[Element, Sequence[Element]],
    ):
        self._left = list(left)
        self._right = list(right)
        self._adjacency = {u: list(adjacency.get(u, ())) for u in self._left}
        self._match_left: Dict[Element, Element] = {}
        self._match_right: Dict[Element, Element] = {}
        self._solved = False

    # ------------------------------------------------------------------
    def solve(self) -> Dict[Element, Element]:
        """Run the algorithm; returns the left-to-right matching map."""
        if self._solved:
            return dict(self._match_left)
        # Augmenting-path DFS recursion depth is bounded by the number of
        # left vertices; posets that are near-chains can hit Python's
        # default limit, so give ourselves headroom for this call.
        needed = len(self._left) + 100
        old_limit = sys.getrecursionlimit()
        if needed > old_limit:
            sys.setrecursionlimit(needed + old_limit)
        try:
            self._run_phases()
        finally:
            sys.setrecursionlimit(old_limit)
        self._solved = True
        return dict(self._match_left)

    def _run_phases(self) -> None:
        while True:
            layers = self._bfs_layers()
            if layers is None:
                break
            augmented = 0
            for u in self._left:
                if u not in self._match_left:
                    if self._dfs_augment(u, layers):
                        augmented += 1
            if augmented == 0:
                break

    def matching_size(self) -> int:
        self.solve()
        return len(self._match_left)

    # ------------------------------------------------------------------
    def _bfs_layers(self) -> Optional[Dict[Element, int]]:
        """Layer left vertices by shortest alternating path from a free one.

        Returns ``None`` when no augmenting path exists.
        """
        layers: Dict[Element, int] = {}
        queue: deque = deque()
        for u in self._left:
            if u not in self._match_left:
                layers[u] = 0
                queue.append(u)
        found_free_right = False
        while queue:
            u = queue.popleft()
            for v in self._adjacency[u]:
                matched = self._match_right.get(v, _UNMATCHED)
                if matched is _UNMATCHED:
                    found_free_right = True
                elif matched not in layers:
                    layers[matched] = layers[u] + 1
                    queue.append(matched)
        return layers if found_free_right else None

    def _dfs_augment(self, u: Element, layers: Dict[Element, int]) -> bool:
        for v in self._adjacency[u]:
            matched = self._match_right.get(v, _UNMATCHED)
            if matched is _UNMATCHED:
                self._match_left[u] = v
                self._match_right[v] = u
                return True
            if layers.get(matched) == layers.get(u, -2) + 1:
                if self._dfs_augment(matched, layers):
                    self._match_left[u] = v
                    self._match_right[v] = u
                    return True
        # Dead end: remove u from this phase's layering.
        layers.pop(u, None)
        return False

    # ------------------------------------------------------------------
    def minimum_vertex_cover(self) -> Tuple[Set[Element], Set[Element]]:
        """Kőnig's construction: ``(left_cover, right_cover)``.

        Left vertices *not* reachable by an alternating path from a free
        left vertex, plus right vertices that *are* reachable, form a
        minimum vertex cover of the bipartite graph.
        """
        self.solve()
        visited_left: Set[Element] = set()
        visited_right: Set[Element] = set()
        queue: deque = deque(
            u for u in self._left if u not in self._match_left
        )
        visited_left.update(queue)
        while queue:
            u = queue.popleft()
            for v in self._adjacency[u]:
                if v in visited_right:
                    continue
                visited_right.add(v)
                matched = self._match_right.get(v, _UNMATCHED)
                if matched is not _UNMATCHED and matched not in visited_left:
                    visited_left.add(matched)
                    queue.append(matched)
        left_cover = {u for u in self._left if u not in visited_left}
        right_cover = {v for v in self._right if v in visited_right}
        return left_cover, right_cover


# ----------------------------------------------------------------------
# Dilworth machinery on posets
# ----------------------------------------------------------------------
def _comparability_matcher(poset: Poset) -> BipartiteMatcher:
    elements = list(poset.elements)
    adjacency = {
        x: [y for y in poset.strictly_above(x)] for x in elements
    }
    # Sort successor lists deterministically by insertion order.
    index = {e: i for i, e in enumerate(elements)}
    for x in adjacency:
        adjacency[x].sort(key=index.__getitem__)
    return BipartiteMatcher(elements, elements, adjacency)


def minimum_chain_partition(poset: Poset) -> List[List[Element]]:
    """Partition the poset into the fewest chains (Dilworth/Fulkerson).

    Each returned chain is sorted bottom-to-top.  The number of chains
    equals :func:`width`.
    """
    matcher = _comparability_matcher(poset)
    match_left = matcher.solve()
    # Successor pointers along matched edges form the chains.
    has_predecessor: Set[Element] = set(match_left.values())
    chains: List[List[Element]] = []
    for element in poset.elements:
        if element in has_predecessor:
            continue
        chain = [element]
        current = element
        while current in match_left:
            current = match_left[current]
            chain.append(current)
        chains.append(chain)
    return chains


def width(poset: Poset) -> int:
    """The size of the largest antichain (equivalently, of the minimum
    chain partition, by Dilworth's theorem).

    >>> width(Poset.antichain("abc"))
    3
    >>> width(Poset.chain("abc"))
    1
    """
    if len(poset) == 0:
        return 0
    matcher = _comparability_matcher(poset)
    return len(poset) - matcher.matching_size()


def maximum_antichain(poset: Poset) -> List[Element]:
    """A concrete antichain of size :func:`width` (Kőnig extraction)."""
    if len(poset) == 0:
        return []
    matcher = _comparability_matcher(poset)
    left_cover, right_cover = matcher.minimum_vertex_cover()
    antichain = [
        e
        for e in poset.elements
        if e not in left_cover and e not in right_cover
    ]
    assert poset.is_antichain(antichain), "Kőnig extraction failed"
    return antichain


def greedy_chain_partition(poset: Poset) -> List[List[Element]]:
    """Partition into chains by repeatedly peeling a longest chain.

    Not guaranteed minimum; used by ablation benchmarks to quantify how
    much the matching-based partition buys the offline algorithm.
    """
    remaining = poset
    chains: List[List[Element]] = []
    while len(remaining) > 0:
        chain = remaining.longest_chain()
        chains.append(chain)
        chain_set = set(chain)
        rest = [e for e in remaining.elements if e not in chain_set]
        remaining = remaining.restricted_to(rest)
    return chains


def antichain_partition(poset: Poset) -> List[List[Element]]:
    """Mirsky's dual: partition into antichains by element height."""
    levels: Dict[Element, int] = {}
    for element in poset.linear_extension():
        below = poset.strictly_below(element)
        levels[element] = (
            1 + max((levels[b] for b in below), default=0) if below else 1
        )
    buckets: Dict[int, List[Element]] = {}
    for element in poset.elements:
        buckets.setdefault(levels[element], []).append(element)
    return [buckets[level] for level in sorted(buckets)]


def is_chain_partition(
    poset: Poset, chains: Iterable[Sequence[Element]]
) -> bool:
    """Validate that ``chains`` partitions the poset into chains."""
    seen: Set[Element] = set()
    for chain in chains:
        items = list(chain)
        for i in range(len(items) - 1):
            if not poset.less(items[i], items[i + 1]):
                return False
        for item in items:
            if item in seen:
                return False
            seen.add(item)
    return seen == set(poset.elements)
