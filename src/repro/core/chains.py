"""Chains, antichains, width, and minimum chain partitions.

Theorem 8 of the paper bounds the *width* of the message poset of a
synchronous computation by ``floor(N/2)`` and then invokes Dilworth's
theorem (``dim(P) <= width(P)``) to obtain the offline algorithm.  The
constructive ingredient is a **minimum chain partition**, which this
module computes with the classical reduction to maximum bipartite
matching (Fulkerson):

    minimum number of chains covering P  =  |P| - maximum matching

in the bipartite graph with a left and a right copy of every element and
an edge ``x_left — y_right`` whenever ``x < y``.  The matching is found
with our own Hopcroft–Karp implementation — no external graph library is
involved.

The module also extracts a *maximum antichain* (the width witness) from a
minimum vertex cover via Kőnig's theorem, and offers a greedy
longest-chain-peeling partition used by the ablation benchmarks.
"""

from __future__ import annotations

import weakref
from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.poset import Poset
from repro.exceptions import PosetError

Element = Hashable

#: Sentinel index for an unmatched vertex.
_FREE = -1
#: BFS layer value meaning "not layered this phase".
_UNLAYERED = -1
#: Layer value assigned to vertices proven dead ends this phase; chosen so
#: ``_RETIRED + 1`` can never equal a live layer (layers are ``>= 0``) nor
#: :data:`_UNLAYERED`, so retired vertices are never re-entered.
_RETIRED = -3


class BipartiteMatcher:
    """Hopcroft–Karp maximum matching on an explicit bipartite graph.

    ``adjacency`` maps each left vertex to the iterable of right vertices
    it may be matched with.  Left and right vertex sets may overlap as
    Python values; they are treated as disjoint sides.  Vertices within
    each side must be distinct values.

    The augmenting-path search is an explicit-stack iterative DFS, so
    arbitrarily long alternating paths (near-chain posets produce paths
    as long as the vertex count) never touch the interpreter's recursion
    limit.  Internally vertices are insertion indices; values are only
    hashed once at construction and translated back at the API boundary.

    Adjacency comes in two interchangeable representations: explicit
    per-left index lists, or one integer bitmask per left vertex
    (:meth:`from_bitmask_rows`, fed straight from
    ``Poset.above_bit_rows``).  The bitmask mode replaces per-edge
    neighbour scans with word-parallel mask intersections while making
    exactly the same augmenting choices — both modes visit candidate
    right vertices in ascending index order — so the matching, and
    everything derived from it, is identical either way.
    """

    def __init__(
        self,
        left: Sequence[Element],
        right: Sequence[Element],
        adjacency: Dict[Element, Sequence[Element]],
    ):
        left_values = list(left)
        right_values = list(right)
        right_index = {v: j for j, v in enumerate(right_values)}
        adj = [
            [right_index[v] for v in adjacency.get(u, ())]
            for u in left_values
        ]
        self._init_from_indices(left_values, right_values, adj)

    @classmethod
    def from_adjacency_lists(
        cls,
        left: Sequence[Element],
        right: Sequence[Element],
        adjacency: Sequence[Sequence[int]],
    ) -> "BipartiteMatcher":
        """Build from pre-resolved right-vertex *indices* per left vertex.

        Skips the per-edge hashing of the value-based constructor; the
        comparability matcher feeds the poset's cached successor index
        straight in.
        """
        matcher = cls.__new__(cls)
        matcher._init_from_indices(
            list(left), list(right), [list(row) for row in adjacency]
        )
        return matcher

    @classmethod
    def from_bitmask_rows(
        cls,
        left: Sequence[Element],
        right: Sequence[Element],
        rows: Sequence[int],
    ) -> "BipartiteMatcher":
        """Build from one right-vertex bitmask per left vertex.

        Bit ``j`` of ``rows[i]`` marks an edge ``left[i] — right[j]``.
        The comparability matcher feeds the poset's closed bitmask rows
        straight in, so no per-edge adjacency is ever materialized.
        """
        matcher = cls.__new__(cls)
        matcher._left = list(left)
        matcher._right = list(right)
        matcher._adj = None
        matcher._adj_masks = list(rows)
        matcher._free_right_mask = (1 << len(matcher._right)) - 1
        matcher._match_left = [_FREE] * len(matcher._left)
        matcher._match_right = [_FREE] * len(matcher._right)
        matcher._matching_size = 0
        matcher._solved = False
        return matcher

    def _init_from_indices(
        self,
        left_values: List[Element],
        right_values: List[Element],
        adj: List[List[int]],
    ) -> None:
        self._left = left_values
        self._right = right_values
        self._adj = adj
        self._adj_masks: "List[int] | None" = None
        self._free_right_mask = 0
        self._match_left: List[int] = [_FREE] * len(left_values)
        self._match_right: List[int] = [_FREE] * len(right_values)
        self._matching_size = 0
        self._solved = False

    # ------------------------------------------------------------------
    def solve(self) -> Dict[Element, Element]:
        """Run the algorithm; returns the left-to-right matching map."""
        self._ensure_solved()
        return {
            self._left[u]: self._right[v]
            for u, v in enumerate(self._match_left)
            if v != _FREE
        }

    def _ensure_solved(self) -> None:
        if not self._solved:
            self._run_phases()
            self._solved = True

    def _run_phases(self) -> None:
        masked = self._adj_masks is not None
        while True:
            if masked:
                layers = self._bfs_layers_masks()
            else:
                layers = self._bfs_layers()
            if layers is None:
                break
            if masked:
                eligible = self._rights_by_partner_layer(layers)
            augmented = 0
            for u in range(len(self._left)):
                if self._match_left[u] == _FREE:
                    if masked:
                        hit = self._dfs_augment_masks(u, layers, eligible)
                    else:
                        hit = self._dfs_augment(u, layers)
                    if hit:
                        augmented += 1
            if augmented == 0:
                break

    def matching_size(self) -> int:
        self._ensure_solved()
        return self._matching_size

    def left_match_indices(self) -> List[int]:
        """Matched right *index* per left index (``-1`` = unmatched).

        Index-level access for callers that work in positional space —
        the sharded chain partition merges per-block matchings by
        offsetting these indices into global positions without ever
        hashing element values.
        """
        self._ensure_solved()
        return list(self._match_left)

    # ------------------------------------------------------------------
    def _bfs_layers(self) -> Optional[List[int]]:
        """Layer left vertices by shortest alternating path from a free one.

        Returns ``None`` when no augmenting path exists.
        """
        match_left = self._match_left
        match_right = self._match_right
        layers = [_UNLAYERED] * len(self._left)
        queue: deque = deque()
        for u in range(len(self._left)):
            if match_left[u] == _FREE:
                layers[u] = 0
                queue.append(u)
        found_free_right = False
        while queue:
            u = queue.popleft()
            next_layer = layers[u] + 1
            for v in self._adj[u]:
                w = match_right[v]
                if w == _FREE:
                    found_free_right = True
                elif layers[w] == _UNLAYERED:
                    layers[w] = next_layer
                    queue.append(w)
        return layers if found_free_right else None

    def _dfs_augment(self, root: int, layers: List[int]) -> bool:
        """Search for one augmenting path from free left vertex ``root``.

        Explicit-stack DFS: each frame is ``[u, edge_iterator, chosen_v]``.
        On reaching a free right vertex the whole stack is flipped into
        the matching; dead ends are retired from this phase's layering so
        sibling searches skip them (the layered-graph pruning Hopcroft–
        Karp relies on for its complexity bound).
        """
        adj = self._adj
        match_left = self._match_left
        match_right = self._match_right
        stack: List[List] = [[root, iter(adj[root]), _FREE]]
        while stack:
            frame = stack[-1]
            u = frame[0]
            next_layer = layers[u] + 1
            descended = False
            for v in frame[1]:
                w = match_right[v]
                if w == _FREE:
                    # Free right vertex: flip every edge on the stack.
                    frame[2] = v
                    for fu, _edges, fv in stack:
                        match_left[fu] = fv
                        match_right[fv] = fu
                    self._matching_size += 1
                    return True
                if layers[w] == next_layer:
                    frame[2] = v
                    stack.append([w, iter(adj[w]), _FREE])
                    descended = True
                    break
            if not descended:
                layers[u] = _RETIRED
                stack.pop()
        return False

    # ------------------------------------------------------------------
    # Bitmask-mode phases.  Same traversal order as the list mode — the
    # lowest set bit of a mask intersection is exactly "the first
    # eligible right vertex in ascending order" — so both modes compute
    # the same matching; only the per-step cost differs (word-parallel
    # AND/OR instead of per-edge scans).
    # ------------------------------------------------------------------
    def _bfs_layers_masks(self) -> Optional[List[int]]:
        match_left = self._match_left
        match_right = self._match_right
        masks = self._adj_masks
        layers = [_UNLAYERED] * len(self._left)
        queue: deque = deque()
        for u in range(len(self._left)):
            if match_left[u] == _FREE:
                layers[u] = 0
                queue.append(u)
        found_free_right = False
        free_right = self._free_right_mask
        # Rights whose matched left has not been layered yet: initially
        # every matched right (free lefts sit at layer 0 already).
        unlayered_partner = ((1 << len(self._right)) - 1) & ~free_right
        while queue:
            u = queue.popleft()
            row = masks[u]
            if row & free_right:
                found_free_right = True
            m = row & unlayered_partner
            if m:
                unlayered_partner &= ~m
                next_layer = layers[u] + 1
                while m:
                    low = m & -m
                    w = match_right[low.bit_length() - 1]
                    layers[w] = next_layer
                    queue.append(w)
                    m ^= low
        return layers if found_free_right else None

    def _rights_by_partner_layer(self, layers: List[int]) -> Dict[int, int]:
        """Mask of right vertices keyed by their matched left's layer."""
        eligible: Dict[int, int] = {}
        match_left = self._match_left
        for u, v in enumerate(match_left):
            if v != _FREE:
                layer = layers[u]
                eligible[layer] = eligible.get(layer, 0) | (1 << v)
        return eligible

    def _dfs_augment_masks(
        self, root: int, layers: List[int], eligible: Dict[int, int]
    ) -> bool:
        """Mask-mode augmenting search from free left vertex ``root``.

        A frame's candidate rights are ``adj[u] & (free ∪ rights whose
        partner sits on the next layer)``; within one root's search that
        mask only shrinks (dead ends retire their right), so taking the
        lowest set bit at each resume reproduces the list-mode scan.
        Augmenting flips re-home each flipped right into its new
        partner's layer mask so later roots in the phase see the
        updated matching.
        """
        masks = self._adj_masks
        match_left = self._match_left
        match_right = self._match_right
        free_right = self._free_right_mask
        stack: List[List[int]] = [[root, _FREE]]
        while stack:
            u = stack[-1][0]
            next_layer = layers[u] + 1
            cand = masks[u] & (free_right | eligible.get(next_layer, 0))
            if cand:
                low = cand & -cand
                v = low.bit_length() - 1
                stack[-1][1] = v
                if low & free_right:
                    # Free right vertex: flip every edge on the stack.
                    for position, (fu, fv) in enumerate(stack):
                        bit = 1 << fv
                        if position + 1 < len(stack):
                            old_partner = stack[position + 1][0]
                            eligible[layers[old_partner]] &= ~bit
                        else:
                            self._free_right_mask &= ~bit
                        fu_layer = layers[fu]
                        eligible[fu_layer] = (
                            eligible.get(fu_layer, 0) | bit
                        )
                        match_left[fu] = fv
                        match_right[fv] = fu
                    self._matching_size += 1
                    return True
                stack.append([match_right[v], _FREE])
            else:
                old_layer = layers[u]
                layers[u] = _RETIRED
                matched_v = match_left[u]
                if matched_v != _FREE:
                    eligible[old_layer] &= ~(1 << matched_v)
                stack.pop()
        return False

    # ------------------------------------------------------------------
    def minimum_vertex_cover(self) -> Tuple[Set[Element], Set[Element]]:
        """Kőnig's construction: ``(left_cover, right_cover)``.

        Left vertices *not* reachable by an alternating path from a free
        left vertex, plus right vertices that *are* reachable, form a
        minimum vertex cover of the bipartite graph.
        """
        self._ensure_solved()
        match_left = self._match_left
        match_right = self._match_right
        masks = self._adj_masks
        visited_left = [False] * len(self._left)
        visited_right = [False] * len(self._right)
        queue: deque = deque()
        for u in range(len(self._left)):
            if match_left[u] == _FREE:
                visited_left[u] = True
                queue.append(u)
        if masks is not None:
            visited_right_mask = 0
            while queue:
                u = queue.popleft()
                newly = masks[u] & ~visited_right_mask
                visited_right_mask |= newly
                while newly:
                    low = newly & -newly
                    v = low.bit_length() - 1
                    newly ^= low
                    visited_right[v] = True
                    w = match_right[v]
                    if w != _FREE and not visited_left[w]:
                        visited_left[w] = True
                        queue.append(w)
        else:
            while queue:
                u = queue.popleft()
                for v in self._adj[u]:
                    if visited_right[v]:
                        continue
                    visited_right[v] = True
                    w = match_right[v]
                    if w != _FREE and not visited_left[w]:
                        visited_left[w] = True
                        queue.append(w)
        left_cover = {
            self._left[u]
            for u in range(len(self._left))
            if not visited_left[u]
        }
        right_cover = {
            self._right[v]
            for v in range(len(self._right))
            if visited_right[v]
        }
        return left_cover, right_cover


# ----------------------------------------------------------------------
# Dilworth machinery on posets
# ----------------------------------------------------------------------
#: Solved comparability matchers, keyed weakly by poset so repeated
#: ``width`` / ``minimum_chain_partition`` / ``maximum_antichain`` calls
#: on the same poset reuse one matching instead of re-running the
#: Hopcroft–Karp phases.  Weak keys keep the cache from pinning posets.
_MATCHER_CACHE: "weakref.WeakKeyDictionary[Poset, BipartiteMatcher]" = (
    weakref.WeakKeyDictionary()
)


def _comparability_matcher(poset: Poset) -> BipartiteMatcher:
    matcher = _MATCHER_CACHE.get(poset)
    if matcher is None:
        elements = poset.elements
        # The poset's closed bitmask rows are exactly the bipartite
        # adjacency (x_left -> y_right iff x < y); posets without the
        # bitset kernel (the reference implementation) fall back to the
        # cached successor index, which yields the same matching.
        rows = getattr(poset, "above_bit_rows", None)
        if rows is not None:
            matcher = BipartiteMatcher.from_bitmask_rows(
                elements, elements, rows()
            )
        else:
            matcher = BipartiteMatcher.from_adjacency_lists(
                elements, elements, poset.successor_index()
            )
        _MATCHER_CACHE[poset] = matcher
    return matcher


def minimum_chain_partition(poset: Poset) -> List[List[Element]]:
    """Partition the poset into the fewest chains (Dilworth/Fulkerson).

    Each returned chain is sorted bottom-to-top.  The number of chains
    equals :func:`width`.
    """
    matcher = _comparability_matcher(poset)
    match_left = matcher.solve()
    # Successor pointers along matched edges form the chains.
    has_predecessor: Set[Element] = set(match_left.values())
    chains: List[List[Element]] = []
    for element in poset.elements:
        if element in has_predecessor:
            continue
        chain = [element]
        current = element
        while current in match_left:
            current = match_left[current]
            chain.append(current)
        chains.append(chain)
    return chains


def width(poset: Poset) -> int:
    """The size of the largest antichain (equivalently, of the minimum
    chain partition, by Dilworth's theorem).

    >>> width(Poset.antichain("abc"))
    3
    >>> width(Poset.chain("abc"))
    1
    """
    if len(poset) == 0:
        return 0
    matcher = _comparability_matcher(poset)
    return len(poset) - matcher.matching_size()


def maximum_antichain(poset: Poset) -> List[Element]:
    """A concrete antichain of size :func:`width` (Kőnig extraction)."""
    if len(poset) == 0:
        return []
    matcher = _comparability_matcher(poset)
    left_cover, right_cover = matcher.minimum_vertex_cover()
    antichain = [
        e
        for e in poset.elements
        if e not in left_cover and e not in right_cover
    ]
    if not poset.is_antichain(antichain):
        raise PosetError(
            "Kőnig extraction produced a non-antichain of size "
            f"{len(antichain)}; the matching or cover is inconsistent"
        )
    return antichain


def greedy_chain_partition(poset: Poset) -> List[List[Element]]:
    """Partition into chains by repeatedly peeling a longest chain.

    Not guaranteed minimum; used by ablation benchmarks to quantify how
    much the matching-based partition buys the offline algorithm.
    """
    remaining = poset
    chains: List[List[Element]] = []
    while len(remaining) > 0:
        chain = remaining.longest_chain()
        chains.append(chain)
        chain_set = set(chain)
        rest = [e for e in remaining.elements if e not in chain_set]
        remaining = remaining.restricted_to(rest)
    return chains


def antichain_partition(poset: Poset) -> List[List[Element]]:
    """Mirsky's dual: partition into antichains by element height."""
    levels: Dict[Element, int] = {}
    for element in poset.linear_extension():
        below = poset.strictly_below(element)
        levels[element] = (
            1 + max((levels[b] for b in below), default=0) if below else 1
        )
    buckets: Dict[int, List[Element]] = {}
    for element in poset.elements:
        buckets.setdefault(levels[element], []).append(element)
    return [buckets[level] for level in sorted(buckets)]


def is_chain_partition(
    poset: Poset, chains: Iterable[Sequence[Element]]
) -> bool:
    """Validate that ``chains`` partitions the poset into chains."""
    seen: Set[Element] = set()
    for chain in chains:
        items = list(chain)
        for i in range(len(items) - 1):
            if not poset.less(items[i], items[i + 1]):
                return False
        for item in items:
            if item in seen:
                return False
            seen.add(item)
    return seen == set(poset.elements)
