"""Dimension theory of finite posets (Section 4.1 of the paper).

The *dimension* of a poset is the least ``t`` for which some family of
``t`` linear extensions realizes the order.  Computing it is NP-hard in
general (Yannakakis 1982, the paper's reference [24]); this module
provides:

* an exact brute-force computation for small posets (used as a test
  oracle against the constructive ``width``-sized realizer);
* the classical *standard examples* ``S_n`` with dimension ``n``, used to
  validate the brute force;
* upper/lower bound helpers (``dim <= width`` via the constructive
  realizer; a trivial lower bound from any incomparable pair).
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.core.chains import width
from repro.core.linear_extensions import (
    all_linear_extensions,
    is_realizer,
    minimum_width_realizer,
)
from repro.core.poset import Poset
from repro.exceptions import PosetError

Element = Hashable

#: Refuse brute force beyond this many elements (extension count explodes).
BRUTE_FORCE_ELEMENT_LIMIT = 8

#: Refuse brute force beyond this many linear extensions.
BRUTE_FORCE_EXTENSION_LIMIT = 5_000


def dimension_upper_bound(poset: Poset) -> int:
    """``width(P)`` — the Dilworth bound the offline algorithm uses."""
    return max(1, width(poset))


def dimension_lower_bound(poset: Poset) -> int:
    """A cheap lower bound: 2 when any incomparable pair exists, else 1."""
    if len(poset) <= 1:
        return 1
    for x, y in poset.incomparable_pairs():
        del x, y
        return 2
    return 1


def dimension_at_most(
    poset: Poset,
    t: int,
    extensions: Optional[Sequence[Sequence[Element]]] = None,
) -> bool:
    """Exact check ``dim(P) <= t`` by exhausting ``t``-subsets of
    linear extensions.  Exponential; intended for small posets only.
    """
    if t < 1:
        return len(poset) <= 1
    if extensions is None:
        extensions = _enumerate_extensions(poset)
    if t >= len(extensions):
        return is_realizer(poset, extensions)
    for family in combinations(extensions, t):
        if is_realizer(poset, family):
            return True
    return False


def dimension(poset: Poset) -> int:
    """Exact dimension by brute force (small posets only).

    Raises :class:`PosetError` when the poset is too large for the
    exhaustive search; use :func:`dimension_upper_bound` instead.
    """
    if len(poset) <= 1:
        return 1
    if len(poset) > BRUTE_FORCE_ELEMENT_LIMIT:
        raise PosetError(
            f"brute-force dimension limited to "
            f"{BRUTE_FORCE_ELEMENT_LIMIT} elements; got {len(poset)}"
        )
    extensions = _enumerate_extensions(poset)
    upper = dimension_upper_bound(poset)
    for t in range(1, upper + 1):
        if dimension_at_most(poset, t, extensions):
            return t
    # The constructive realizer guarantees we never fall through, but be
    # explicit rather than trusting an invariant silently.
    realizer = minimum_width_realizer(poset)
    assert is_realizer(poset, realizer)
    return len(realizer)  # pragma: no cover


def _enumerate_extensions(poset: Poset) -> List[List[Element]]:
    extensions: List[List[Element]] = []
    for extension in all_linear_extensions(poset):
        extensions.append(extension)
        if len(extensions) > BRUTE_FORCE_EXTENSION_LIMIT:
            raise PosetError(
                "too many linear extensions for brute-force dimension"
            )
    return extensions


def standard_example(n: int) -> Poset:
    """The standard example ``S_n``: dimension exactly ``n`` (for n >= 2).

    Elements ``('a', i)`` and ``('b', i)`` for ``0 <= i < n`` with
    ``('a', i) < ('b', j)`` iff ``i != j``.
    """
    if n < 1:
        raise ValueError("standard_example requires n >= 1")
    lows: List[Tuple[str, int]] = [("a", i) for i in range(n)]
    highs: List[Tuple[str, int]] = [("b", i) for i in range(n)]
    pairs = [
        (("a", i), ("b", j))
        for i in range(n)
        for j in range(n)
        if i != j
    ]
    return Poset(lows + highs, pairs)


def crown_poset(n: int) -> Poset:
    """The crown ``S_n^0`` variant where ``a_i < b_j`` iff ``j`` is
    ``i`` or ``i+1 (mod n)`` — a classic width-``n`` family used in the
    dimension stress tests."""
    if n < 2:
        raise ValueError("crown_poset requires n >= 2")
    lows = [("a", i) for i in range(n)]
    highs = [("b", i) for i in range(n)]
    pairs = []
    for i in range(n):
        pairs.append((("a", i), ("b", i)))
        pairs.append((("a", i), ("b", (i + 1) % n)))
    return Poset(lows + highs, pairs)


def critical_pairs(poset: Poset) -> List[Tuple[Element, Element]]:
    """Ordered incomparable pairs ``(x, y)`` with ``down(x) ⊆ down(y)``
    and ``up(y) ⊆ up(x)`` — the pairs every realizer must reverse.

    Any family of linear extensions reversing every critical pair is a
    realizer, a standard fact used by the dimension tests.
    """
    result: List[Tuple[Element, Element]] = []
    for x in poset.elements:
        for y in poset.elements:
            if x == y or poset.comparable(x, y):
                continue
            if poset.strictly_below(x) <= poset.strictly_below(y) and (
                poset.strictly_above(y) <= poset.strictly_above(x)
            ):
                result.append((x, y))
    return result


def reverses_pair(
    extension: Sequence[Element], pair: Tuple[Element, Element]
) -> bool:
    """True when ``extension`` places ``pair[1]`` before ``pair[0]``."""
    x, y = pair
    position = {e: i for i, e in enumerate(extension)}
    return position[y] < position[x]


def family_reverses_all_critical_pairs(
    poset: Poset, extensions: Iterable[Sequence[Element]]
) -> bool:
    """Check the critical-pair characterisation of realizers."""
    pairs = critical_pairs(poset)
    families = list(extensions)
    return all(
        any(reverses_pair(extension, pair) for extension in families)
        for pair in pairs
    )
