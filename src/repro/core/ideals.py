"""Order ideals (down-sets): the lattice of consistent global states.

Mattern's classical observation: the consistent global states of a
computation are exactly the order ideals of its event poset, and they
form a distributive lattice under union/intersection.  For a
synchronous computation the events are the messages, so the ideals of
``(M, ↦)`` are the consistent *message* cuts — the structure behind
checkpointing and predicate detection.

Enumeration and counting are delegated to the chain-indexed bitset
kernel (:mod:`repro.core.lattice_kernel`): by Theorem 8 the message
poset splits into at most ``floor(N/2)`` chains, every ideal is a
tuple of per-chain prefix lengths, and the kernel walks that encoding
with O(width) mask operations per ideal.  The pre-kernel layered BFS
is preserved as :func:`ideals_reference` — the executable
specification the property tests and benchmarks compare against.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, Iterator, List, Set

from repro.core import lattice_kernel
from repro.core.lattice_kernel import popcount
from repro.core.poset import Poset, iter_bits
from repro.exceptions import PosetError

Element = Hashable


def _bitset_rows(poset):
    """The kernel's closed below-rows, or ``None`` for posets (such as
    :class:`repro.core.poset_reference.ReferencePoset`) without them."""
    rows = getattr(poset, "below_bit_rows", None)
    return rows() if rows is not None else None


def is_down_set(poset: Poset, subset: Iterable[Element]) -> bool:
    """True when the subset contains everything below each member."""
    below = _bitset_rows(poset)
    if below is None:
        chosen: Set[Element] = set(subset)
        for element in chosen:
            if element not in poset:
                raise PosetError(f"element {element!r} not in poset")
            if not poset.strictly_below(element) <= chosen:
                return False
        return True
    mask = lattice_kernel.mask_of(poset, subset)
    return lattice_kernel.is_ideal_mask(poset, mask)


def down_closure(poset: Poset, subset: Iterable[Element]) -> FrozenSet[Element]:
    """The smallest ideal containing ``subset``."""
    below = _bitset_rows(poset)
    if below is None:
        closure: Set[Element] = set()
        for element in subset:
            if element not in poset:
                raise PosetError(f"element {element!r} not in poset")
            closure.add(element)
            closure.update(poset.strictly_below(element))
        return frozenset(closure)
    mask = lattice_kernel.mask_of(poset, subset)
    closed = mask
    m = mask
    while m:
        low = m & -m
        closed |= below[low.bit_length() - 1]
        m ^= low
    return lattice_kernel.members_of_mask(poset, closed)


def all_ideals(
    poset: Poset, limit: int = 100_000
) -> Iterator[FrozenSet[Element]]:
    """Yield every ideal, smallest first (by cardinality layer).

    A thin wrapper over the chain-indexed kernel
    (:func:`repro.core.lattice_kernel.iterate_ideal_masks`): the
    kernel's chain-prefix order is the canonical enumeration order,
    and this wrapper re-layers it by cardinality (a stable sort on
    popcount) to keep the historical smallest-first contract.  Raises
    :class:`PosetError` when more than ``limit`` ideals exist — the
    whole lattice is enumerated on the first ``next()``, so the limit
    fires up front rather than mid-iteration.
    """
    if _bitset_rows(poset) is None:
        yield from ideals_reference(poset, limit=limit)
        return
    masks = list(lattice_kernel.iterate_ideal_masks(poset, limit=limit))
    masks.sort(key=popcount)
    elements = poset.elements
    for mask in masks:
        yield frozenset(elements[b] for b in iter_bits(mask))


def ideals_reference(
    poset: Poset, limit: int = 100_000
) -> Iterator[FrozenSet[Element]]:
    """The pre-kernel layered BFS, kept as the executable specification.

    An ideal of size ``k + 1`` is an ideal of size ``k`` plus one
    element minimal in the complement; each layer is generated from
    the previous with per-element frozenset closures and de-duplicated
    by hashing — exponential with a large constant, which is exactly
    what ``BENCH_lattice.json`` measures the kernel against.

    Within a layer the iteration order is unspecified (the historical
    ``sorted(map(repr, ...))`` tiebreak was a determinism hack, not a
    contract); the *canonical* order of the library is the kernel's
    chain-prefix order as re-layered by :func:`all_ideals`.  Compare
    the two as sets, the way the property suite does.
    """
    current: Set[FrozenSet[Element]] = {frozenset()}
    produced = 0
    while current:
        next_layer: Set[FrozenSet[Element]] = set()
        for ideal in current:
            produced += 1
            if produced > limit:
                raise PosetError(
                    f"poset has more than {limit} ideals; raise the limit"
                )
            yield ideal
            for element in poset.elements:
                if element in ideal:
                    continue
                if poset.strictly_below(element) <= ideal:
                    next_layer.add(ideal | {element})
        current = next_layer


def ideal_count(poset: Poset, limit: int = 100_000) -> int:
    """The number of ideals (consistent global states).

    Counts through :func:`repro.core.lattice_kernel.count_ideals`
    without materializing a single frozenset.
    """
    if _bitset_rows(poset) is None:
        return sum(1 for _ in ideals_reference(poset, limit=limit))
    return lattice_kernel.count_ideals(poset, limit=limit)


def ideal_join(a: FrozenSet[Element], b: FrozenSet[Element]) -> FrozenSet[Element]:
    """Lattice join of two ideals (their union is again an ideal)."""
    return a | b


def ideal_meet(a: FrozenSet[Element], b: FrozenSet[Element]) -> FrozenSet[Element]:
    """Lattice meet of two ideals (their intersection)."""
    return a & b


def maximal_elements_of_ideal(
    poset: Poset, ideal: FrozenSet[Element]
) -> List[Element]:
    """The antichain of maximal elements — the ideal's *frontier*.

    Ideals are in bijection with antichains (an ideal is the down
    closure of its frontier), which is how consistent cuts are usually
    reported to users.
    """
    above_rows = getattr(poset, "above_bit_rows", None)
    if above_rows is None:
        return [
            element
            for element in poset.elements
            if element in ideal
            and not any(
                other in ideal for other in poset.strictly_above(element)
            )
        ]
    above = above_rows()
    mask = lattice_kernel.mask_of(poset, ideal, strict=False)
    elements = poset.elements
    return [
        elements[b] for b in iter_bits(mask) if not above[b] & mask
    ]
