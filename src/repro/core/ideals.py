"""Order ideals (down-sets): the lattice of consistent global states.

Mattern's classical observation: the consistent global states of a
computation are exactly the order ideals of its event poset, and they
form a distributive lattice under union/intersection.  For a
synchronous computation the events are the messages, so the ideals of
``(M, ↦)`` are the consistent *message* cuts — the structure behind
checkpointing and predicate detection.

This module enumerates ideals (exponential in the worst case, guarded by
a limit), tests down-set-ness, and exposes the lattice operations the
tests verify distributivity on.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, Iterator, List, Set

from repro.core.poset import Poset
from repro.exceptions import PosetError

Element = Hashable


def is_down_set(poset: Poset, subset: Iterable[Element]) -> bool:
    """True when the subset contains everything below each member."""
    chosen: Set[Element] = set(subset)
    for element in chosen:
        if element not in poset:
            raise PosetError(f"element {element!r} not in poset")
        if not poset.strictly_below(element) <= chosen:
            return False
    return True


def down_closure(poset: Poset, subset: Iterable[Element]) -> FrozenSet[Element]:
    """The smallest ideal containing ``subset``."""
    closure: Set[Element] = set()
    for element in subset:
        if element not in poset:
            raise PosetError(f"element {element!r} not in poset")
        closure.add(element)
        closure.update(poset.strictly_below(element))
    return frozenset(closure)


def all_ideals(
    poset: Poset, limit: int = 100_000
) -> Iterator[FrozenSet[Element]]:
    """Yield every ideal, smallest first (by cardinality layer).

    Enumeration walks the lattice level by level: an ideal of size k+1
    is an ideal of size k plus one element minimal in the complement.
    Raises :class:`PosetError` when more than ``limit`` ideals exist.
    """
    current: Set[FrozenSet[Element]] = {frozenset()}
    produced = 0
    while current:
        next_layer: Set[FrozenSet[Element]] = set()
        for ideal in sorted(current, key=lambda s: sorted(map(repr, s))):
            produced += 1
            if produced > limit:
                raise PosetError(
                    f"poset has more than {limit} ideals; raise the limit"
                )
            yield ideal
            for element in poset.elements:
                if element in ideal:
                    continue
                if poset.strictly_below(element) <= ideal:
                    next_layer.add(ideal | {element})
        current = next_layer


def ideal_count(poset: Poset, limit: int = 100_000) -> int:
    """The number of ideals (consistent global states)."""
    return sum(1 for _ in all_ideals(poset, limit=limit))


def ideal_join(a: FrozenSet[Element], b: FrozenSet[Element]) -> FrozenSet[Element]:
    """Lattice join of two ideals (their union is again an ideal)."""
    return a | b


def ideal_meet(a: FrozenSet[Element], b: FrozenSet[Element]) -> FrozenSet[Element]:
    """Lattice meet of two ideals (their intersection)."""
    return a & b


def maximal_elements_of_ideal(
    poset: Poset, ideal: FrozenSet[Element]
) -> List[Element]:
    """The antichain of maximal elements — the ideal's *frontier*.

    Ideals are in bijection with antichains (an ideal is the down
    closure of its frontier), which is how consistent cuts are usually
    reported to users.
    """
    return [
        element
        for element in poset.elements
        if element in ideal
        and not any(other in ideal for other in poset.strictly_above(element))
    ]
