"""Vector timestamps and the *vector order* of Equation (2).

The paper compares timestamps with the standard strict vector order:

    u < v  iff  (for all k: u[k] <= v[k]) and (exists j: u[j] < v[j])

This module provides an immutable :class:`VectorTimestamp` value type
implementing that order, plus the component-wise ``join`` (maximum) used
by every clock algorithm in the paper, and an :data:`INFINITY` sentinel
component used by the internal-event timestamps of Section 5 (where
``succ(e)`` is "a vector where all elements are infinity" when no message
follows ``e``).
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence, Tuple, Union

from repro.obs import instrument as _obs

Number = Union[int, float]

#: Component value used for the "no successor message" vector of Section 5.
INFINITY: float = math.inf


class VectorTimestamp:
    """An immutable vector of numeric components with the paper's order.

    Instances behave like small tuples: they support indexing, iteration,
    ``len``, equality and hashing.  The rich comparisons implement the
    *vector order* of Equation (2); note this is a partial order, so
    ``not (u < v)`` does **not** imply ``v <= u``.

    >>> u = VectorTimestamp([1, 0, 0])
    >>> v = VectorTimestamp([1, 1, 1])
    >>> u < v
    True
    >>> w = VectorTimestamp([0, 2, 0])
    >>> u < w or w < u
    False
    >>> u.concurrent_with(w)
    True
    """

    __slots__ = ("_components",)

    def __init__(self, components: Iterable[Number]):
        self._components: Tuple[Number, ...] = tuple(components)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, size: int) -> "VectorTimestamp":
        """Return the all-zero vector of ``size`` components.

        This is the initial value of every process-local vector in the
        online algorithm (Figure 5, "initially 0") and the ``prev(e)``
        of an event with no preceding message (Section 5).
        """
        if size < 0:
            raise ValueError(f"vector size must be non-negative, got {size}")
        return cls((0,) * size)

    @classmethod
    def infinities(cls, size: int) -> "VectorTimestamp":
        """Return the all-infinity vector used as ``succ(e)`` sentinel."""
        if size < 0:
            raise ValueError(f"vector size must be non-negative, got {size}")
        return cls((INFINITY,) * size)

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._components)

    def __iter__(self) -> Iterator[Number]:
        return iter(self._components)

    def __getitem__(self, index):
        return self._components[index]

    @property
    def components(self) -> Tuple[Number, ...]:
        """The underlying tuple of components."""
        return self._components

    # ------------------------------------------------------------------
    # Equality / hashing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, VectorTimestamp):
            return self._components == other._components
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash(self._components)

    # ------------------------------------------------------------------
    # Vector order (Equation 2)
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "VectorTimestamp") -> None:
        if not isinstance(other, VectorTimestamp):
            raise TypeError(
                f"cannot compare VectorTimestamp with {type(other).__name__}"
            )
        if len(self) != len(other):
            raise ValueError(
                "cannot compare vectors of different sizes: "
                f"{len(self)} vs {len(other)}"
            )

    def _check_same_size(self, other: "VectorTimestamp") -> None:
        if len(self._components) != len(other._components):
            raise ValueError(
                "cannot compare vectors of different sizes: "
                f"{len(self)} vs {len(other)}"
            )

    def __le__(self, other: object) -> bool:
        """Component-wise ``<=`` (reflexive closure of the vector order).

        Foreign operand types get ``NotImplemented`` back so Python can
        try the reflected comparison; only a size mismatch between two
        vectors is a hard :class:`ValueError`.
        """
        if not isinstance(other, VectorTimestamp):
            return NotImplemented
        self._check_same_size(other)
        # O(d) comparison pass — the cost the paper's small vectors buy
        # down.  The hook is a single attribute load + None test when
        # observability is off (see the overhead guard test).
        m = _obs.metrics
        if m is not None:
            m.vector_comparisons.inc()
        return all(a <= b for a, b in zip(self._components, other._components))

    def __lt__(self, other: object) -> bool:
        """The strict vector order of Equation (2), in a single pass."""
        if not isinstance(other, VectorTimestamp):
            return NotImplemented
        self._check_same_size(other)
        m = _obs.metrics
        if m is not None:
            m.vector_comparisons.inc()
        strict = False
        for a, b in zip(self._components, other._components):
            if a > b:
                return False
            if a < b:
                strict = True
        return strict

    def __ge__(self, other: object) -> bool:
        if not isinstance(other, VectorTimestamp):
            return NotImplemented
        return other.__le__(self)

    def __gt__(self, other: object) -> bool:
        if not isinstance(other, VectorTimestamp):
            return NotImplemented
        return other.__lt__(self)

    def concurrent_with(self, other: "VectorTimestamp") -> bool:
        """True when neither vector is below the other (``u ‖ v``).

        Two *distinct* messages with equal vectors are also reported as
        concurrent-or-equal by the order test; callers that need the
        paper's exact semantics compare with :meth:`__lt__` directly.
        """
        self._check_compatible(other)
        return not self < other and not other < self and self != other

    def comparable_with(self, other: "VectorTimestamp") -> bool:
        """True when one vector is strictly below the other."""
        return self < other or other < self

    # ------------------------------------------------------------------
    # Operations used by the clock algorithms
    # ------------------------------------------------------------------
    def join(self, other: "VectorTimestamp") -> "VectorTimestamp":
        """Component-wise maximum (lines (5) and (9) of Figure 5)."""
        self._check_compatible(other)
        m = _obs.metrics
        if m is not None:
            m.vector_joins.inc()
        return VectorTimestamp(
            max(a, b) for a, b in zip(self._components, other._components)
        )

    def meet(self, other: "VectorTimestamp") -> "VectorTimestamp":
        """Component-wise minimum (dual of :meth:`join`)."""
        self._check_compatible(other)
        return VectorTimestamp(
            min(a, b) for a, b in zip(self._components, other._components)
        )

    def incremented(self, index: int, amount: Number = 1) -> "VectorTimestamp":
        """Return a copy with ``amount`` added to component ``index``.

        This is the ``v_i[g]++`` of lines (6) and (10) of Figure 5.
        """
        if not 0 <= index < len(self._components):
            raise IndexError(
                f"component index {index} out of range for size {len(self)}"
            )
        parts = list(self._components)
        parts[index] += amount
        return VectorTimestamp(parts)

    def with_component(self, index: int, value: Number) -> "VectorTimestamp":
        """Return a copy with component ``index`` replaced by ``value``."""
        if not 0 <= index < len(self._components):
            raise IndexError(
                f"component index {index} out of range for size {len(self)}"
            )
        parts = list(self._components)
        parts[index] = value
        return VectorTimestamp(parts)

    def is_zero(self) -> bool:
        """True when every component equals zero."""
        return all(c == 0 for c in self._components)

    def sum(self) -> Number:
        """Sum of the components (useful as a crude Lamport-style bound)."""
        return sum(self._components)

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        inner = ",".join(
            "inf" if c == INFINITY else str(c) for c in self._components
        )
        return f"({inner})"


def join_all(vectors: Sequence[VectorTimestamp]) -> VectorTimestamp:
    """Component-wise maximum of a non-empty sequence of vectors."""
    if not vectors:
        raise ValueError("join_all requires at least one vector")
    result = vectors[0]
    for vector in vectors[1:]:
        result = result.join(vector)
    return result


def dominates(u: VectorTimestamp, v: VectorTimestamp) -> bool:
    """True when ``u`` is component-wise greater than or equal to ``v``."""
    return v <= u


def strictly_dominates(u: VectorTimestamp, v: VectorTimestamp) -> bool:
    """True when ``u`` is component-wise strictly greater than ``v``.

    This is stronger than the vector order: *every* component must grow.
    The offline algorithm's timestamps have this property for comparable
    messages because ranks differ in every linear extension.
    """
    if len(u) != len(v):
        raise ValueError("cannot compare vectors of different sizes")
    return all(a > b for a, b in zip(u, v))
