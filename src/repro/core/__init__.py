"""Order-theoretic core: vectors, posets, chains, realizers, dimension.

These are the mathematical foundations the paper builds on (Sections 2
and 4.1): the vector order of Equation (2), the message poset
``(M, ↦)``, Dilworth width, and chain realizers for the offline
algorithm.
"""

from repro.core.chains import (
    BipartiteMatcher,
    antichain_partition,
    greedy_chain_partition,
    is_chain_partition,
    maximum_antichain,
    minimum_chain_partition,
    width,
)
from repro.core.dimension import (
    crown_poset,
    critical_pairs,
    dimension,
    dimension_at_most,
    dimension_lower_bound,
    dimension_upper_bound,
    standard_example,
)
from repro.core.fastpath import MutableVector, stamp_batch
from repro.core.ideals import (
    all_ideals,
    down_closure,
    ideal_count,
    ideal_join,
    ideal_meet,
    is_down_set,
    maximal_elements_of_ideal,
)
from repro.core.linear_extensions import (
    all_linear_extensions,
    chain_forced_extension,
    check_linear_extension,
    count_linear_extensions,
    intersection_of_extensions,
    is_linear_extension,
    is_realizer,
    minimum_width_realizer,
    ranks_in_extension,
    realizer_from_chain_partition,
)
from repro.core.poset import Poset
from repro.core.vector import (
    INFINITY,
    VectorTimestamp,
    dominates,
    join_all,
    strictly_dominates,
)

__all__ = [
    "BipartiteMatcher",
    "INFINITY",
    "MutableVector",
    "Poset",
    "VectorTimestamp",
    "all_ideals",
    "all_linear_extensions",
    "antichain_partition",
    "down_closure",
    "ideal_count",
    "ideal_join",
    "ideal_meet",
    "is_down_set",
    "maximal_elements_of_ideal",
    "chain_forced_extension",
    "check_linear_extension",
    "count_linear_extensions",
    "critical_pairs",
    "crown_poset",
    "dimension",
    "dimension_at_most",
    "dimension_lower_bound",
    "dimension_upper_bound",
    "dominates",
    "greedy_chain_partition",
    "intersection_of_extensions",
    "is_chain_partition",
    "is_linear_extension",
    "is_realizer",
    "join_all",
    "maximum_antichain",
    "minimum_chain_partition",
    "minimum_width_realizer",
    "ranks_in_extension",
    "realizer_from_chain_partition",
    "stamp_batch",
    "standard_example",
    "strictly_dominates",
    "width",
]
