"""Span-based structured tracing with a bounded ring-buffer collector.

A *span* is one timed operation — a rendezvous, a clock update, one
phase of the Figure 7 decomposition algorithm.  Spans nest: the tracer
keeps a per-thread stack, so a ``rendezvous.receive`` span opened while
an ``online.on_receive`` span is active records the latter as its
parent, and exported traces reconstruct the call tree across the
runtime's process threads.

Timing uses :func:`time.perf_counter` (monotonic, unaffected by wall
clock adjustments).  Finished spans land in a :class:`collections.deque`
ring buffer, so a long-lived instrumented process has a hard memory
bound: old spans fall off the back instead of growing without limit.

:data:`NULL_SPAN` is the shared no-op used by
:mod:`repro.obs.instrument` when observability is disabled — entering
it allocates nothing, which is what makes the disabled hook path free.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One timed, attributed operation.

    ``start`` and ``duration`` are :func:`time.perf_counter` values —
    meaningful relative to other spans from the same tracer, not as
    wall-clock timestamps.  ``status`` is ``"ok"`` unless the traced
    block raised, in which case it is ``"error"`` and ``error`` names
    the exception.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "thread",
        "attributes",
        "start",
        "duration",
        "status",
        "error",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        thread: str,
        attributes: Dict[str, Any],
        start: float,
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread = thread
        self.attributes = attributes
        self.start = start
        self.duration: Optional[float] = None
        self.status = "ok"
        self.error: Optional[str] = None

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach one attribute while the span is open (or after)."""
        self.attributes[key] = value

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable record (one JSONL line per span)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread": self.thread,
            "attributes": dict(self.attributes),
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "Span":
        span = cls(
            name=record["name"],
            span_id=record["span_id"],
            parent_id=record.get("parent_id"),
            thread=record.get("thread", ""),
            attributes=dict(record.get("attributes", {})),
            start=record["start"],
        )
        span.duration = record.get("duration")
        span.status = record.get("status", "ok")
        span.error = record.get("error")
        return span

    def __repr__(self) -> str:
        took = (
            f"{self.duration * 1e3:.3f}ms"
            if self.duration is not None
            else "open"
        )
        return f"Span({self.name!r}, id={self.span_id}, {took})"


class _ActiveSpan:
    """Context manager pairing a :class:`Span` with its tracer."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self._tracer._push(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self.span
        span.duration = time.perf_counter() - span.start
        if exc_type is not None:
            span.status = "error"
            span.error = f"{exc_type.__name__}: {exc}"
        self._tracer._pop(span)
        return False  # never swallow the exception


class _NullSpan:
    """Shared no-op stand-in used when observability is disabled.

    It is both the context manager and the yielded "span": entering
    returns itself, every mutator is inert, and no per-call object is
    ever created.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        pass


#: The singleton no-op span; identity-comparable in tests.
NULL_SPAN = _NullSpan()


class Tracer:
    """Creates spans and collects the finished ones in a ring buffer.

    >>> tracer = Tracer(capacity=16)
    >>> with tracer.span("outer", size=3):
    ...     with tracer.span("inner") as inner:
    ...         inner.set_attribute("step", 1)
    >>> [s.name for s in tracer.finished()]
    ['inner', 'outer']
    >>> tracer.finished()[0].parent_id == tracer.finished()[1].span_id
    True
    """

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._finished: deque = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self._stacks = threading.local()
        self._lock = threading.Lock()
        self._started = 0

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    def _stack(self) -> List[Span]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
        return stack

    def span(self, name: str, **attributes: Any) -> _ActiveSpan:
        """Open a span; use as ``with tracer.span("op", key=val) as sp:``.

        The parent is whatever span is innermost *on the calling
        thread* at entry time, so nesting is correct even with many
        runtime threads tracing concurrently.
        """
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent_id,
            thread=threading.current_thread().name,
            attributes=attributes,
            start=time.perf_counter(),
        )
        return _ActiveSpan(self, span)

    def _push(self, span: Span) -> None:
        self._stack().append(span)
        with self._lock:
            self._started += 1

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # exited out of order; drop it anyway
            stack.remove(span)
        with self._lock:
            self._finished.append(span)

    # ------------------------------------------------------------------
    def current_span(self) -> Optional[Span]:
        """The innermost open span on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def finished(self) -> List[Span]:
        """A snapshot of collected spans, oldest first."""
        with self._lock:
            return list(self._finished)

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.finished())

    @property
    def started_count(self) -> int:
        """Spans opened so far (including ones evicted from the ring)."""
        with self._lock:
            return self._started

    @property
    def dropped_count(self) -> int:
        """Spans evicted from the ring buffer (plus any still open)."""
        with self._lock:
            return self._started - len(self._finished)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
