"""Thread-safe metrics primitives: counters, gauges, histograms.

The paper's results are quantitative — vector sizes track the
edge-decomposition size (Theorems 4–6), the offline width obeys
``floor(N/2)`` (Theorem 8) — so the observability layer's first job is
to turn those bounds into live numbers.  A :class:`MetricsRegistry`
holds named metrics; every metric is safe to update concurrently from
the rendezvous runtime's process threads (each instance guards its
state with its own lock, and the registry guards creation, so the same
name always resolves to the same object no matter which thread asks
first).

The three metric kinds mirror the Prometheus data model so
:mod:`repro.obs.export` can render the registry in the Prometheus text
exposition format without translation:

* :class:`Counter` — monotonically increasing totals (messages
  timestamped, vector comparisons, piggyback bytes);
* :class:`Gauge` — point-in-time values (vector component count,
  decomposition size, theorem bounds);
* :class:`Histogram` — fixed-bucket distributions (rendezvous blocking
  time, per-message piggyback bytes);
* :class:`QuantileSketch` — a bounded-memory streaming estimator of
  p50/p95/p99 (the P² algorithm: five markers per tracked quantile, so
  state is O(1) no matter how many observations stream through), which
  maps onto the Prometheus *summary* type.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ReproError

Number = Union[int, float]


class MetricError(ReproError):
    """Raised on metric misuse (name clash, bad buckets, bad value)."""


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value: Number = 0
        self._lock = threading.Lock()

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise MetricError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Number:
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A value that can move both ways (sizes, bounds, backlog)."""

    kind = "gauge"

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value: Number = 0
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: Number = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: Number = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> Number:
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self.value}

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


#: Default histogram buckets for second-valued durations (rendezvous
#: blocking time): sub-millisecond up to ten seconds.
DURATION_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
)

#: Default buckets for byte-valued sizes (piggybacked vectors).
BYTE_BUCKETS: Tuple[float, ...] = (
    8.0,
    16.0,
    32.0,
    64.0,
    128.0,
    256.0,
    512.0,
    1024.0,
    4096.0,
)


class Histogram:
    """A fixed-bucket histogram with Prometheus-style cumulative view.

    ``buckets`` are the finite upper bounds, strictly increasing; an
    implicit ``+Inf`` bucket catches everything above the last bound.
    An observation lands in the first bucket whose bound is ``>=`` the
    value (i.e. bounds are inclusive upper edges, as in Prometheus'
    ``le`` label).
    """

    kind = "histogram"

    __slots__ = ("name", "help", "_bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self,
        name: str,
        buckets: Sequence[Number],
        help: str = "",
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise MetricError(
                f"histogram {name!r} needs at least one bucket bound"
            )
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise MetricError(
                f"histogram {name!r} bounds must be strictly increasing: "
                f"{bounds}"
            )
        if bounds[-1] == float("inf"):
            bounds = bounds[:-1]  # the +Inf bucket is implicit
            if not bounds:
                raise MetricError(
                    f"histogram {name!r} needs a finite bucket bound"
                )
        self.name = name
        self.help = help
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self._sum: float = 0.0
        self._count = 0
        self._lock = threading.Lock()

    @property
    def bounds(self) -> Tuple[float, ...]:
        """The finite upper bucket edges (``+Inf`` is implicit)."""
        return self._bounds

    def observe(self, value: Number) -> None:
        """Record one observation."""
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def observe_many(self, value: Number, count: int) -> None:
        """Record ``count`` identical observations in one locked update.

        Batch call sites (``repro.core.fastpath``) use this to mirror
        what ``count`` individual :meth:`observe` calls would have
        recorded without paying the per-observation lock round-trips.
        """
        if count < 0:
            raise MetricError(
                f"histogram {self.name!r} observation count must be "
                f"non-negative, got {count}"
            )
        if count == 0:
            return
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += count
            self._sum += value * count
            self._count += count

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_edge, count)`` pairs ending at ``+Inf``."""
        with self._lock:
            counts = list(self._counts)
        pairs: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self._bounds, counts):
            running += count
            pairs.append((bound, running))
        pairs.append((float("inf"), running + counts[-1]))
        return pairs

    def mean(self) -> float:
        """Average observation (0.0 when empty)."""
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": self.kind,
            "count": self.count,
            "sum": self.sum,
            "buckets": [
                [bound, count] for bound, count in self.bucket_counts()
            ],
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count})"


#: Default quantiles tracked by :class:`QuantileSketch` — the latency
#: percentiles every report surfaces.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)


class _P2Marker:
    """P² (Jain & Chlamtac 1985) state for *one* target quantile.

    Five markers track the running minimum, two intermediate points,
    the quantile estimate itself, and the running maximum.  Marker
    heights are nudged toward their desired positions with a piecewise
    parabolic (P²) interpolation, falling back to linear when the
    parabola would leave the bracketing heights.  Total state: five
    heights, five positions, five desired positions — O(1) regardless
    of the observation count.
    """

    __slots__ = ("p", "_heights", "_positions", "_desired", "_initial")

    def __init__(self, p: float):
        self.p = p
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [
            1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0
        ]
        self._initial: List[float] = []

    def observe(self, value: float) -> None:
        if len(self._heights) < 5:
            self._initial.append(value)
            self._initial.sort()
            if len(self._initial) == 5:
                self._heights = list(self._initial)
            return
        q = self._heights
        n = self._positions
        if value < q[0]:
            q[0] = value
            cell = 0
        elif value >= q[4]:
            q[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= q[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            n[i] += 1.0
        increments = (0.0, self.p / 2.0, self.p, (1.0 + self.p) / 2.0, 1.0)
        for i in range(5):
            self._desired[i] += increments[i]
        for i in (1, 2, 3):
            delta = self._desired[i] - n[i]
            if (delta >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                delta <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                sign = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, sign)
                if not q[i - 1] < candidate < q[i + 1]:
                    candidate = self._linear(i, sign)
                q[i] = candidate
                n[i] += sign

    def _parabolic(self, i: int, sign: float) -> float:
        q = self._heights
        n = self._positions
        return q[i] + sign / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + sign)
            * (q[i + 1] - q[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - sign)
            * (q[i] - q[i - 1])
            / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, sign: float) -> float:
        q = self._heights
        n = self._positions
        j = i + int(sign)
        return q[i] + sign * (q[j] - q[i]) / (n[j] - n[i])

    def estimate(self) -> float:
        """The current quantile estimate (0.0 with no observations)."""
        if self._heights:
            return self._heights[2]
        stored = self._initial
        if not stored:
            return 0.0
        # Fewer than five observations: exact interpolation over the
        # stored (sorted) values.
        rank = self.p * (len(stored) - 1)
        low = int(rank)
        high = min(low + 1, len(stored) - 1)
        fraction = rank - low
        return stored[low] + (stored[high] - stored[low]) * fraction


class QuantileSketch:
    """A bounded-memory streaming quantile estimator (P²-style).

    Tracks a fixed tuple of target quantiles — p50/p95/p99 by default —
    with five markers each, so memory stays O(1) while ``observe``
    streams any number of values through.  This is the summary-type
    companion to :class:`Histogram`: the histogram gives exact bucket
    counts at fixed resolution, the sketch gives direct percentile
    estimates with no bucket-boundary quantization.

    Estimates are typically within a few percent of the exact
    percentile on unimodal distributions (pinned at 5% on 10^5
    observations by ``tests/obs/test_quantiles.py``).
    """

    kind = "summary"

    __slots__ = (
        "name", "help", "_markers", "_sum", "_count", "_min", "_max",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        help: str = "",
    ):
        targets = tuple(float(q) for q in quantiles)
        if not targets:
            raise MetricError(
                f"summary {name!r} needs at least one target quantile"
            )
        if any(not 0.0 < q < 1.0 for q in targets):
            raise MetricError(
                f"summary {name!r} quantiles must lie in (0, 1): "
                f"{targets}"
            )
        if any(q2 <= q1 for q1, q2 in zip(targets, targets[1:])):
            raise MetricError(
                f"summary {name!r} quantiles must be strictly "
                f"increasing: {targets}"
            )
        self.name = name
        self.help = help
        self._markers = tuple(_P2Marker(q) for q in targets)
        self._sum = 0.0
        self._count = 0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    @property
    def quantile_targets(self) -> Tuple[float, ...]:
        return tuple(marker.p for marker in self._markers)

    def observe(self, value: Number) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            for marker in self._markers:
                marker.observe(value)

    def observe_many(self, value: Number, count: int) -> None:
        """Record ``count`` identical observations (one locked update)."""
        if count < 0:
            raise MetricError(
                f"summary {self.name!r} observation count must be "
                f"non-negative, got {count}"
            )
        value = float(value)
        with self._lock:
            for _ in range(count):
                self._count += 1
                self._sum += value
                if value < self._min:
                    self._min = value
                if value > self._max:
                    self._max = value
                for marker in self._markers:
                    marker.observe(value)

    def quantile(self, q: float) -> float:
        """The estimate for target ``q`` (must be a tracked target)."""
        with self._lock:
            for marker in self._markers:
                if marker.p == q:
                    return marker.estimate()
        raise MetricError(
            f"summary {self.name!r} does not track quantile {q}; "
            f"targets are {self.quantile_targets}"
        )

    def quantiles(self) -> Dict[float, float]:
        """All tracked ``{target: estimate}`` pairs."""
        with self._lock:
            return {m.p: m.estimate() for m in self._markers}

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def min(self) -> float:
        """Smallest observation (0.0 when empty)."""
        with self._lock:
            return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        """Largest observation (0.0 when empty)."""
        with self._lock:
            return self._max if self._count else 0.0

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            quantiles = {
                repr(m.p): m.estimate() for m in self._markers
            }
            return {
                "type": self.kind,
                "count": self._count,
                "sum": self._sum,
                "quantiles": quantiles,
            }

    def __repr__(self) -> str:
        return f"QuantileSketch({self.name}, n={self.count})"


Metric = Union[Counter, Gauge, Histogram, QuantileSketch]


class MetricsRegistry:
    """A named collection of metrics, safe to share across threads.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking
    twice for the same name returns the same object, and asking for an
    existing name with a different kind is an error — so independent
    modules can resolve the same metric without coordination.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, kind, factory) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise MetricError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {kind.kind}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(
            name, Counter, lambda: Counter(name, help)
        )

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name, help))

    def histogram(
        self,
        name: str,
        buckets: Sequence[Number] = DURATION_BUCKETS,
        help: str = "",
    ) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, buckets, help)
        )

    def summary(
        self,
        name: str,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        help: str = "",
    ) -> QuantileSketch:
        return self._get_or_create(
            name,
            QuantileSketch,
            lambda: QuantileSketch(name, quantiles, help),
        )

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        with self._lock:
            metrics = list(self._metrics.values())
        return iter(sorted(metrics, key=lambda m: m.name))

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A plain-data view of every metric (JSON-serializable)."""
        return {metric.name: metric.snapshot() for metric in self}
