"""Thread-safe metrics primitives: counters, gauges, histograms.

The paper's results are quantitative — vector sizes track the
edge-decomposition size (Theorems 4–6), the offline width obeys
``floor(N/2)`` (Theorem 8) — so the observability layer's first job is
to turn those bounds into live numbers.  A :class:`MetricsRegistry`
holds named metrics; every metric is safe to update concurrently from
the rendezvous runtime's process threads (each instance guards its
state with its own lock, and the registry guards creation, so the same
name always resolves to the same object no matter which thread asks
first).

The three metric kinds mirror the Prometheus data model so
:mod:`repro.obs.export` can render the registry in the Prometheus text
exposition format without translation:

* :class:`Counter` — monotonically increasing totals (messages
  timestamped, vector comparisons, piggyback bytes);
* :class:`Gauge` — point-in-time values (vector component count,
  decomposition size, theorem bounds);
* :class:`Histogram` — fixed-bucket distributions (rendezvous blocking
  time, per-message piggyback bytes);
* :class:`QuantileSketch` — a bounded-memory streaming estimator of
  p50/p95/p99 (the P² algorithm: five markers per tracked quantile, so
  state is O(1) no matter how many observations stream through), which
  maps onto the Prometheus *summary* type.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ReproError

Number = Union[int, float]


class MetricError(ReproError):
    """Raised on metric misuse (name clash, bad buckets, bad value)."""


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value: Number = 0
        self._lock = threading.Lock()

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise MetricError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Number:
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self.value}

    def merge(self, other: "Counter") -> None:
        """Fold another counter's total into this one (exact)."""
        if not isinstance(other, Counter):
            raise MetricError(
                f"cannot merge {type(other).__name__} into counter "
                f"{self.name!r}"
            )
        self.inc(other.value)

    def merge_snapshot(self, data: Dict[str, object]) -> None:
        """Fold a :meth:`snapshot` dict into this counter (exact)."""
        self.inc(data.get("value", 0))  # type: ignore[arg-type]

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A value that can move both ways (sizes, bounds, backlog)."""

    kind = "gauge"

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value: Number = 0
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: Number = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: Number = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> Number:
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self.value}

    def merge(self, other: "Gauge") -> None:
        """Fold another gauge in by taking the elementwise maximum.

        Gauges in the catalog are sizes and theorem bounds, so the
        conservative global view after a cross-process merge is the
        largest value any process reported.  ``max`` is also
        commutative and associative, making the fold order-independent.
        """
        if not isinstance(other, Gauge):
            raise MetricError(
                f"cannot merge {type(other).__name__} into gauge "
                f"{self.name!r}"
            )
        self.merge_snapshot({"value": other.value})

    def merge_snapshot(self, data: Dict[str, object]) -> None:
        """Fold a :meth:`snapshot` dict in (elementwise maximum)."""
        value = data.get("value", 0)
        with self._lock:
            if value > self._value:  # type: ignore[operator]
                self._value = value  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


#: Default histogram buckets for second-valued durations (rendezvous
#: blocking time): sub-millisecond up to ten seconds.
DURATION_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
)

#: Default buckets for byte-valued sizes (piggybacked vectors).
BYTE_BUCKETS: Tuple[float, ...] = (
    8.0,
    16.0,
    32.0,
    64.0,
    128.0,
    256.0,
    512.0,
    1024.0,
    4096.0,
)


class Histogram:
    """A fixed-bucket histogram with Prometheus-style cumulative view.

    ``buckets`` are the finite upper bounds, strictly increasing; an
    implicit ``+Inf`` bucket catches everything above the last bound.
    An observation lands in the first bucket whose bound is ``>=`` the
    value (i.e. bounds are inclusive upper edges, as in Prometheus'
    ``le`` label).
    """

    kind = "histogram"

    __slots__ = (
        "name",
        "help",
        "_bounds",
        "_counts",
        "_sum",
        "_count",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        buckets: Sequence[Number],
        help: str = "",
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise MetricError(
                f"histogram {name!r} needs at least one bucket bound"
            )
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise MetricError(
                f"histogram {name!r} bounds must be strictly increasing: "
                f"{bounds}"
            )
        if bounds[-1] == float("inf"):
            bounds = bounds[:-1]  # the +Inf bucket is implicit
            if not bounds:
                raise MetricError(
                    f"histogram {name!r} needs a finite bucket bound"
                )
        self.name = name
        self.help = help
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self._sum: float = 0.0
        self._count = 0
        self._lock = threading.Lock()

    @property
    def bounds(self) -> Tuple[float, ...]:
        """The finite upper bucket edges (``+Inf`` is implicit)."""
        return self._bounds

    def observe(self, value: Number) -> None:
        """Record one observation."""
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def observe_many(self, value: Number, count: int) -> None:
        """Record ``count`` identical observations in one locked update.

        Batch call sites (``repro.core.fastpath``) use this to mirror
        what ``count`` individual :meth:`observe` calls would have
        recorded without paying the per-observation lock round-trips.
        """
        if count < 0:
            raise MetricError(
                f"histogram {self.name!r} observation count must be "
                f"non-negative, got {count}"
            )
        if count == 0:
            return
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += count
            self._sum += value * count
            self._count += count

    def observe_batch(self, values: Sequence[Number]) -> None:
        """Record many (distinct) observations under one lock.

        Equivalent to calling :meth:`observe` per value; deferred-fold
        call sites (``repro.obs.live.NodeTelemetry``) drain their
        sample queues through this to keep lock round-trips off the
        per-sample cost.
        """
        if not values:
            return
        bounds = self._bounds
        with self._lock:
            counts = self._counts
            total = 0.0
            for value in values:
                counts[bisect_left(bounds, value)] += 1
                total += value
            self._sum += total
            self._count += len(values)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_edge, count)`` pairs ending at ``+Inf``."""
        with self._lock:
            counts = list(self._counts)
        pairs: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self._bounds, counts):
            running += count
            pairs.append((bound, running))
        pairs.append((float("inf"), running + counts[-1]))
        return pairs

    def mean(self) -> float:
        """Average observation (0.0 when empty)."""
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": self.kind,
            "count": self.count,
            "sum": self.sum,
            "buckets": [
                [bound, count] for bound, count in self.bucket_counts()
            ],
        }

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in (exact; bounds must match)."""
        if not isinstance(other, Histogram):
            raise MetricError(
                f"cannot merge {type(other).__name__} into histogram "
                f"{self.name!r}"
            )
        if other._bounds != self._bounds:
            raise MetricError(
                f"histogram {self.name!r} bucket bounds differ: "
                f"{self._bounds} vs {other._bounds}"
            )
        with other._lock:
            counts = list(other._counts)
            total = other._sum
            n = other._count
        self._merge_raw(counts, total, n)

    def merge_snapshot(self, data: Dict[str, object]) -> None:
        """Fold a :meth:`snapshot` dict in (exact; bounds must match).

        The snapshot carries *cumulative* bucket counts (Prometheus
        ``le`` semantics); they are de-accumulated back into raw
        per-bucket counts before adding.
        """
        pairs = list(data.get("buckets") or [])  # type: ignore[arg-type]
        bounds = tuple(float(b) for b, _ in pairs[:-1])
        if bounds != self._bounds:
            raise MetricError(
                f"histogram {self.name!r} bucket bounds differ: "
                f"{self._bounds} vs {bounds}"
            )
        raw: List[int] = []
        previous = 0
        for _, cumulative in pairs:
            step = int(cumulative) - previous
            if step < 0:
                raise MetricError(
                    f"histogram {self.name!r} snapshot has decreasing "
                    f"cumulative bucket counts"
                )
            raw.append(step)
            previous = int(cumulative)
        self._merge_raw(
            raw,
            float(data.get("sum", 0.0)),  # type: ignore[arg-type]
            int(data.get("count", 0)),  # type: ignore[arg-type]
        )

    def _merge_raw(
        self, counts: Sequence[int], total: float, n: int
    ) -> None:
        with self._lock:
            for index, count in enumerate(counts):
                self._counts[index] += count
            self._sum += total
            self._count += n

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count})"


#: Default quantiles tracked by :class:`QuantileSketch` — the latency
#: percentiles every report surfaces.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)

#: Cap on re-observations per donor when merging P² sketches: a donor
#: summarizing millions of values is folded in with at most this many
#: weighted marker re-observations, keeping merges O(1) in donor size.
MERGE_REOBSERVE_CAP = 1024


class _P2Marker:
    """P² (Jain & Chlamtac 1985) state for *one* target quantile.

    Five markers track the running minimum, two intermediate points,
    the quantile estimate itself, and the running maximum.  Marker
    heights are nudged toward their desired positions with a piecewise
    parabolic (P²) interpolation, falling back to linear when the
    parabola would leave the bracketing heights.  Total state: five
    heights, five positions, five desired positions — O(1) regardless
    of the observation count.
    """

    __slots__ = ("p", "_heights", "_positions", "_desired", "_initial")

    def __init__(self, p: float):
        self.p = p
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [
            1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0
        ]
        self._initial: List[float] = []

    def observe(self, value: float) -> None:
        if len(self._heights) < 5:
            self._initial.append(value)
            self._initial.sort()
            if len(self._initial) == 5:
                self._heights = list(self._initial)
            return
        q = self._heights
        n = self._positions
        if value < q[0]:
            q[0] = value
            cell = 0
        elif value >= q[4]:
            q[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= q[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            n[i] += 1.0
        increments = (0.0, self.p / 2.0, self.p, (1.0 + self.p) / 2.0, 1.0)
        for i in range(5):
            self._desired[i] += increments[i]
        for i in (1, 2, 3):
            delta = self._desired[i] - n[i]
            if (delta >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                delta <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                sign = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, sign)
                if not q[i - 1] < candidate < q[i + 1]:
                    candidate = self._linear(i, sign)
                q[i] = candidate
                n[i] += sign

    def _parabolic(self, i: int, sign: float) -> float:
        q = self._heights
        n = self._positions
        return q[i] + sign / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + sign)
            * (q[i + 1] - q[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - sign)
            * (q[i] - q[i - 1])
            / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, sign: float) -> float:
        q = self._heights
        n = self._positions
        j = i + int(sign)
        return q[i] + sign * (q[j] - q[i]) / (n[j] - n[i])

    def estimate(self) -> float:
        """The current quantile estimate (0.0 with no observations)."""
        if self._heights:
            return self._heights[2]
        stored = self._initial
        if not stored:
            return 0.0
        # Fewer than five observations: exact interpolation over the
        # stored (sorted) values.
        rank = self.p * (len(stored) - 1)
        low = int(rank)
        high = min(low + 1, len(stored) - 1)
        fraction = rank - low
        return stored[low] + (stored[high] - stored[low]) * fraction


class QuantileSketch:
    """A bounded-memory streaming quantile estimator (P²-style).

    Tracks a fixed tuple of target quantiles — p50/p95/p99 by default —
    with five markers each, so memory stays O(1) while ``observe``
    streams any number of values through.  This is the summary-type
    companion to :class:`Histogram`: the histogram gives exact bucket
    counts at fixed resolution, the sketch gives direct percentile
    estimates with no bucket-boundary quantization.

    Estimates are typically within a few percent of the exact
    percentile on unimodal distributions (pinned at 5% on 10^5
    observations by ``tests/obs/test_quantiles.py``).
    """

    kind = "summary"

    __slots__ = (
        "name", "help", "_markers", "_sum", "_count", "_min", "_max",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        help: str = "",
    ):
        targets = tuple(float(q) for q in quantiles)
        if not targets:
            raise MetricError(
                f"summary {name!r} needs at least one target quantile"
            )
        if any(not 0.0 < q < 1.0 for q in targets):
            raise MetricError(
                f"summary {name!r} quantiles must lie in (0, 1): "
                f"{targets}"
            )
        if any(q2 <= q1 for q1, q2 in zip(targets, targets[1:])):
            raise MetricError(
                f"summary {name!r} quantiles must be strictly "
                f"increasing: {targets}"
            )
        self.name = name
        self.help = help
        self._markers = tuple(_P2Marker(q) for q in targets)
        self._sum = 0.0
        self._count = 0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    @property
    def quantile_targets(self) -> Tuple[float, ...]:
        return tuple(marker.p for marker in self._markers)

    def _feed_markers(self, value: float) -> None:
        """Advance every marker by one observation (caller holds lock)."""
        for marker in self._markers:
            marker.observe(value)

    def observe(self, value: Number) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            self._feed_markers(value)

    def observe_many(self, value: Number, count: int) -> None:
        """Record ``count`` identical observations (one locked update)."""
        if count < 0:
            raise MetricError(
                f"summary {self.name!r} observation count must be "
                f"non-negative, got {count}"
            )
        value = float(value)
        with self._lock:
            for _ in range(count):
                self._count += 1
                self._sum += value
                if value < self._min:
                    self._min = value
                if value > self._max:
                    self._max = value
                for marker in self._markers:
                    marker.observe(value)

    def quantile(self, q: float) -> float:
        """The estimate for target ``q`` (must be a tracked target)."""
        with self._lock:
            for marker in self._markers:
                if marker.p == q:
                    return marker.estimate()
        raise MetricError(
            f"summary {self.name!r} does not track quantile {q}; "
            f"targets are {self.quantile_targets}"
        )

    def quantiles(self) -> Dict[float, float]:
        """All tracked ``{target: estimate}`` pairs."""
        with self._lock:
            return {m.p: m.estimate() for m in self._markers}

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def min(self) -> float:
        """Smallest observation (0.0 when empty)."""
        with self._lock:
            return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        """Largest observation (0.0 when empty)."""
        with self._lock:
            return self._max if self._count else 0.0

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            quantiles = {
                repr(m.p): m.estimate() for m in self._markers
            }
            snap: Dict[str, object] = {
                "type": self.kind,
                "count": self._count,
                "sum": self._sum,
                "quantiles": quantiles,
                "min": self._min if self._count else 0.0,
                "max": self._max if self._count else 0.0,
            }
            # Merge state: the raw marker heights/positions (or the
            # exact stored values while under five observations), so a
            # remote snapshot can be folded into another sketch.
            if self._markers and self._markers[0]._heights:
                snap["markers"] = [
                    {
                        "p": m.p,
                        "heights": list(m._heights),
                        "positions": list(m._positions),
                    }
                    for m in self._markers
                ]
            else:
                initial = self._markers[0]._initial if self._markers else []
                snap["initial"] = list(initial)
            return snap

    # -- merging -------------------------------------------------------
    #
    # Accuracy contract: ``count``/``sum``/``min``/``max`` merge
    # *exactly*.  Quantile estimates after a merge are approximate: the
    # donor's distribution is reconstructed from its marker summary (at
    # most five heights per tracked quantile, each with a cumulative
    # rank) and re-observed into this sketch as a weighted sample of at
    # most :data:`MERGE_REOBSERVE_CAP` points.  A donor with fewer than
    # five observations still holds its raw values and merges exactly.
    # The merged estimate therefore carries the donor's own P² error
    # plus a resampling error; ``tests/properties/test_property_merge``
    # pins the combined error against serial observation.

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch in (see the accuracy contract above)."""
        if not isinstance(other, QuantileSketch):
            raise MetricError(
                f"cannot merge {type(other).__name__} into summary "
                f"{self.name!r}"
            )
        if other.quantile_targets != self.quantile_targets:
            raise MetricError(
                f"summary {self.name!r} targets differ: "
                f"{self.quantile_targets} vs {other.quantile_targets}"
            )
        with other._lock:
            count = other._count
            total = other._sum
            minimum = other._min
            maximum = other._max
            if other._markers and other._markers[0]._heights:
                markers = [
                    (list(m._heights), list(m._positions))
                    for m in other._markers
                ]
                initial = None
            else:
                markers = None
                initial = (
                    list(other._markers[0]._initial)
                    if other._markers
                    else []
                )
        self._merge_state(count, total, minimum, maximum, markers, initial)

    def merge_snapshot(self, data: Dict[str, object]) -> None:
        """Fold a :meth:`snapshot` dict in (same accuracy contract).

        Snapshots produced by older code without the ``markers`` /
        ``initial`` merge state fall back to re-observing the reported
        quantile *estimates* — coarser, but still bounded by the same
        contract.
        """
        count = int(data.get("count", 0))  # type: ignore[arg-type]
        total = float(data.get("sum", 0.0))  # type: ignore[arg-type]
        raw_markers = data.get("markers")
        initial = data.get("initial")
        markers: Optional[List[Tuple[List[float], List[float]]]] = None
        if raw_markers is not None:
            targets = tuple(
                float(m["p"])  # type: ignore[index]
                for m in raw_markers
            )
            if targets != self.quantile_targets:
                raise MetricError(
                    f"summary {self.name!r} targets differ: "
                    f"{self.quantile_targets} vs {targets}"
                )
            markers = [
                (
                    [float(h) for h in m["heights"]],  # type: ignore[index]
                    [float(n) for n in m["positions"]],  # type: ignore[index]
                )
                for m in raw_markers  # type: ignore[union-attr]
            ]
        elif initial is None:
            # Legacy snapshot: treat each reported estimate as one
            # marker height at its target rank.
            quantiles = data.get("quantiles") or {}
            denominator = max(count - 1, 1)
            markers = [
                (
                    [float(estimate)],
                    [float(q) * denominator + 1.0],
                )
                for q, estimate in sorted(
                    (float(k), v)
                    for k, v in quantiles.items()  # type: ignore[union-attr]
                )
            ]
        minimum = float(data.get("min", 0.0))  # type: ignore[arg-type]
        maximum = float(data.get("max", 0.0))  # type: ignore[arg-type]
        self._merge_state(
            count,
            total,
            minimum,
            maximum,
            markers,
            (
                list(initial)  # type: ignore[arg-type]
                if initial is not None
                else None
            ),
        )

    def _merge_state(
        self,
        count: int,
        total: float,
        minimum: float,
        maximum: float,
        markers: Optional[List[Tuple[List[float], List[float]]]],
        initial: Optional[List[float]],
    ) -> None:
        if count <= 0:
            return
        sample = self._resample(count, markers, initial)
        with self._lock:
            self._count += count
            self._sum += total
            if minimum < self._min:
                self._min = minimum
            if maximum > self._max:
                self._max = maximum
            # Feed the weighted sample round-robin (one repetition of
            # each point per sweep) so the marker state never sees a
            # long monotone run of a single height.
            remaining = [reps for _, reps in sample]
            while any(remaining):
                for index, (height, _) in enumerate(sample):
                    if remaining[index] > 0:
                        remaining[index] -= 1
                        self._feed_markers(height)

    @staticmethod
    def _resample(
        count: int,
        markers: Optional[List[Tuple[List[float], List[float]]]],
        initial: Optional[List[float]],
    ) -> List[Tuple[float, int]]:
        """Build a weighted ``(height, repetitions)`` donor sample."""
        if initial is not None:
            return [(float(v), 1) for v in initial]
        if not markers:
            return []
        denominator = max(count - 1, 1)
        points: List[Tuple[float, float]] = []
        for heights, positions in markers:
            for height, position in zip(heights, positions):
                fraction = (position - 1.0) / denominator
                points.append((min(max(fraction, 0.0), 1.0), height))
        points.sort()
        effective = min(count, MERGE_REOBSERVE_CAP)
        last = len(points) - 1
        sample: List[Tuple[float, int]] = []
        for index, (_, height) in enumerate(points):
            if index == 0:
                left = 0.0
            else:
                left = (points[index - 1][0] + points[index][0]) / 2.0
            if index == last:
                right = 1.0
            else:
                right = (points[index][0] + points[index + 1][0]) / 2.0
            reps = int(round((right - left) * effective))
            if reps == 0 and index in (0, last):
                reps = 1  # never drop the extremes
            if reps > 0:
                sample.append((height, reps))
        return sample

    def __repr__(self) -> str:
        return f"QuantileSketch({self.name}, n={self.count})"


Metric = Union[Counter, Gauge, Histogram, QuantileSketch]


class MetricsRegistry:
    """A named collection of metrics, safe to share across threads.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking
    twice for the same name returns the same object, and asking for an
    existing name with a different kind is an error — so independent
    modules can resolve the same metric without coordination.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, kind, factory) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise MetricError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {kind.kind}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(
            name, Counter, lambda: Counter(name, help)
        )

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name, help))

    def histogram(
        self,
        name: str,
        buckets: Sequence[Number] = DURATION_BUCKETS,
        help: str = "",
    ) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, buckets, help)
        )

    def summary(
        self,
        name: str,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        help: str = "",
    ) -> QuantileSketch:
        return self._get_or_create(
            name,
            QuantileSketch,
            lambda: QuantileSketch(name, quantiles, help),
        )

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        with self._lock:
            metrics = list(self._metrics.values())
        return iter(sorted(metrics, key=lambda m: m.name))

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A plain-data view of every metric (JSON-serializable)."""
        return {metric.name: metric.snapshot() for metric in self}

    # -- merging -------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold every metric of ``other`` into this registry.

        Metrics are created on first sight (same name resolves to the
        same kind, bounds and targets); a name registered here with a
        different kind raises :class:`MetricError`.  Counters and
        histograms fold exactly, gauges take the maximum, and quantile
        sketches follow the P² merge accuracy contract.
        """
        for metric in other:
            if isinstance(metric, Counter):
                self.counter(metric.name, metric.help).merge(metric)
            elif isinstance(metric, Gauge):
                self.gauge(metric.name, metric.help).merge(metric)
            elif isinstance(metric, Histogram):
                self.histogram(
                    metric.name, metric.bounds, metric.help
                ).merge(metric)
            elif isinstance(metric, QuantileSketch):
                self.summary(
                    metric.name, metric.quantile_targets, metric.help
                ).merge(metric)

    def merge_snapshot(
        self, snapshot: Dict[str, Dict[str, object]]
    ) -> None:
        """Fold a :meth:`snapshot` dict (e.g. from another process) in.

        This is the cross-process path: node registries serialize with
        ``snapshot()``, travel as JSON, and fold into one global
        registry here — which ``render_prometheus`` and
        ``metrics_to_json`` then render unchanged.
        """
        for name in sorted(snapshot):
            data = snapshot[name]
            kind = data.get("type")
            if kind == Counter.kind:
                self.counter(name).merge_snapshot(data)
            elif kind == Gauge.kind:
                self.gauge(name).merge_snapshot(data)
            elif kind == Histogram.kind:
                raw = data.get("buckets") or []
                pairs = list(raw)  # type: ignore[arg-type]
                bounds = [float(b) for b, _ in pairs[:-1]]
                self.histogram(
                    name, bounds or DURATION_BUCKETS
                ).merge_snapshot(data)
            elif kind == QuantileSketch.kind:
                raw_markers = data.get("markers")
                if raw_markers:
                    targets = [
                        float(m["p"])  # type: ignore[index]
                        for m in raw_markers
                    ]
                else:
                    quantiles = data.get("quantiles") or {}
                    targets = sorted(
                        float(q)
                        for q in quantiles  # type: ignore[union-attr]
                    )
                self.summary(
                    name, targets or DEFAULT_QUANTILES
                ).merge_snapshot(data)
            else:
                raise MetricError(
                    f"cannot merge metric {name!r}: unknown type "
                    f"{kind!r}"
                )
