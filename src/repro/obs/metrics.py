"""Thread-safe metrics primitives: counters, gauges, histograms.

The paper's results are quantitative — vector sizes track the
edge-decomposition size (Theorems 4–6), the offline width obeys
``floor(N/2)`` (Theorem 8) — so the observability layer's first job is
to turn those bounds into live numbers.  A :class:`MetricsRegistry`
holds named metrics; every metric is safe to update concurrently from
the rendezvous runtime's process threads (each instance guards its
state with its own lock, and the registry guards creation, so the same
name always resolves to the same object no matter which thread asks
first).

The three metric kinds mirror the Prometheus data model so
:mod:`repro.obs.export` can render the registry in the Prometheus text
exposition format without translation:

* :class:`Counter` — monotonically increasing totals (messages
  timestamped, vector comparisons, piggyback bytes);
* :class:`Gauge` — point-in-time values (vector component count,
  decomposition size, theorem bounds);
* :class:`Histogram` — fixed-bucket distributions (rendezvous blocking
  time, per-message piggyback bytes).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ReproError

Number = Union[int, float]


class MetricError(ReproError):
    """Raised on metric misuse (name clash, bad buckets, bad value)."""


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value: Number = 0
        self._lock = threading.Lock()

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise MetricError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Number:
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A value that can move both ways (sizes, bounds, backlog)."""

    kind = "gauge"

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value: Number = 0
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: Number = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: Number = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> Number:
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self.value}

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


#: Default histogram buckets for second-valued durations (rendezvous
#: blocking time): sub-millisecond up to ten seconds.
DURATION_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
)

#: Default buckets for byte-valued sizes (piggybacked vectors).
BYTE_BUCKETS: Tuple[float, ...] = (
    8.0,
    16.0,
    32.0,
    64.0,
    128.0,
    256.0,
    512.0,
    1024.0,
    4096.0,
)


class Histogram:
    """A fixed-bucket histogram with Prometheus-style cumulative view.

    ``buckets`` are the finite upper bounds, strictly increasing; an
    implicit ``+Inf`` bucket catches everything above the last bound.
    An observation lands in the first bucket whose bound is ``>=`` the
    value (i.e. bounds are inclusive upper edges, as in Prometheus'
    ``le`` label).
    """

    kind = "histogram"

    __slots__ = ("name", "help", "_bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self,
        name: str,
        buckets: Sequence[Number],
        help: str = "",
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise MetricError(
                f"histogram {name!r} needs at least one bucket bound"
            )
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise MetricError(
                f"histogram {name!r} bounds must be strictly increasing: "
                f"{bounds}"
            )
        if bounds[-1] == float("inf"):
            bounds = bounds[:-1]  # the +Inf bucket is implicit
            if not bounds:
                raise MetricError(
                    f"histogram {name!r} needs a finite bucket bound"
                )
        self.name = name
        self.help = help
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self._sum: float = 0.0
        self._count = 0
        self._lock = threading.Lock()

    @property
    def bounds(self) -> Tuple[float, ...]:
        """The finite upper bucket edges (``+Inf`` is implicit)."""
        return self._bounds

    def observe(self, value: Number) -> None:
        """Record one observation."""
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def observe_many(self, value: Number, count: int) -> None:
        """Record ``count`` identical observations in one locked update.

        Batch call sites (``repro.core.fastpath``) use this to mirror
        what ``count`` individual :meth:`observe` calls would have
        recorded without paying the per-observation lock round-trips.
        """
        if count < 0:
            raise MetricError(
                f"histogram {self.name!r} observation count must be "
                f"non-negative, got {count}"
            )
        if count == 0:
            return
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += count
            self._sum += value * count
            self._count += count

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_edge, count)`` pairs ending at ``+Inf``."""
        with self._lock:
            counts = list(self._counts)
        pairs: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self._bounds, counts):
            running += count
            pairs.append((bound, running))
        pairs.append((float("inf"), running + counts[-1]))
        return pairs

    def mean(self) -> float:
        """Average observation (0.0 when empty)."""
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": self.kind,
            "count": self.count,
            "sum": self.sum,
            "buckets": [
                [bound, count] for bound, count in self.bucket_counts()
            ],
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count})"


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named collection of metrics, safe to share across threads.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking
    twice for the same name returns the same object, and asking for an
    existing name with a different kind is an error — so independent
    modules can resolve the same metric without coordination.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, kind, factory) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise MetricError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {kind.kind}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(
            name, Counter, lambda: Counter(name, help)
        )

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name, help))

    def histogram(
        self,
        name: str,
        buckets: Sequence[Number] = DURATION_BUCKETS,
        help: str = "",
    ) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, buckets, help)
        )

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        with self._lock:
            metrics = list(self._metrics.values())
        return iter(sorted(metrics, key=lambda m: m.name))

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A plain-data view of every metric (JSON-serializable)."""
        return {metric.name: metric.snapshot() for metric in self}
