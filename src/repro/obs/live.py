"""Live telemetry plane for the multiprocess socket runtime.

Everything else in :mod:`repro.obs` is post-mortem: node processes in
:mod:`repro.sim.distributed` keep private registries that only surface
at ``MSG_DONE``, and a straggling node in a 120-process ``run_load``
is invisible until the deadline sweeper poisons the run.  This module
is the streaming counterpart:

* :class:`NodeTelemetry` — the node-process side: a private
  :class:`~repro.obs.metrics.MetricsRegistry` of commit counters and
  blocking-time distributions, plus a bounded queue of flight-event
  deltas, periodically flushed as ``MSG_TELEMETRY`` frames (every N
  commits or T seconds, whichever comes first).  Frames are
  fire-and-forget and only ever sent *between* protocol actions, so
  they interleave safely with the strict request/response rendezvous
  protocol.
* :class:`LiveAggregator` — the coordinator side: keeps a rolling
  window of per-node snapshots, folds the latest snapshot of every
  node into one merged registry (``MetricsRegistry.merge_snapshot``),
  and derives health signals: **stragglers** via per-node commit-rate
  and block-time-p95 outlier detection, **stalls** via missed
  heartbeat deadlines, and **deadlock suspicion** by running
  :func:`~repro.obs.flightrec.wait_for_summary` over the live partial
  flight record.  Signals are raised as structured
  :class:`HealthEvent` objects and counted on the obs registry
  (``live_straggler_detected_total`` etc.) when instrumentation is
  enabled.
* Sinks — :func:`render_top` (the ``repro obs top`` dashboard), a
  streaming JSONL writer (``--live-out``), and
  :class:`MetricsEndpoint`, an opt-in stdlib ``http.server`` scrape
  endpoint serving the merged Prometheus text during the run.

Nothing here starts threads or opens sockets at import time; the HTTP
endpoint only spins up when explicitly started.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from statistics import median
from typing import (
    IO,
    Any,
    Callable,
    Deque,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.obs import instrument as _instrument
from repro.obs.export import render_prometheus
from repro.obs import flightrec as _flightrec
from repro.obs.flightrec import (
    FlightRecorder,
    WaitForSummary,
    wait_for_summary,
)
from repro.obs.metrics import MetricsRegistry

# Metric names of the per-node telemetry registry.  They live beside
# the global catalog (``repro.obs.instrument``) but are always on for
# a telemetry-enabled run, independent of ``instrument.enable()``.
NODE_COMMITS = "node_commits_total"
NODE_SENDS = "node_sends_total"
NODE_RECEIVES = "node_receives_total"
NODE_INTERNAL = "node_internal_total"
NODE_BLOCK_SECONDS = "node_block_seconds"
NODE_BLOCK_QUANTILES = "node_block_quantile_seconds"

#: Health-event kinds.
STRAGGLER = "straggler"
STALL = "stall"
DEADLOCK_SUSPECT = "deadlock_suspect"

#: Cap on flight-event deltas queued between two telemetry pushes.
NODE_EVENT_QUEUE = 512

#: Blocking-time samples the P2 sketch sees exactly before switching
#: to 1-in-``SKETCH_DECIMATE`` subsampling (the sketch update is the
#: one per-sample cost too heavy for the rendezvous commit path; the
#: histogram still sees every sample).
SKETCH_EXACT_HEAD = 64
SKETCH_DECIMATE = 8


def _count(attr: str, amount: int = 1) -> None:
    """Bump a global obs counter when instrumentation is enabled."""
    m = _instrument.metrics
    if m is not None:
        getattr(m, attr).inc(amount)


@dataclass
class TelemetryConfig:
    """Knobs for the telemetry plane (all times in seconds).

    ``interval_seconds`` / ``every_commits`` control the node-side push
    cadence (a frame goes out when either trips; ``0`` disables that
    trigger).  The shipping default is time-driven only: commit-count
    cadence scales frame traffic with throughput, which on a fast run
    floods the coordinator — opt into it for tests that need frames
    quickly.  The rest configure coordinator-side detection and the
    sinks.  The plane as a whole is off unless a config is passed to
    the runner — the default-constructed config is the *enabled*
    default, not the global default.
    """

    interval_seconds: float = 1.0
    every_commits: int = 0
    window: int = 64
    heartbeat_timeout: float = 0.0  # 0 -> derived from the interval
    straggler_ratio: float = 0.4
    straggler_min_nodes: int = 3
    block_p95_factor: float = 4.0
    block_p95_floor: float = 0.005
    ring_capacity: int = 2048
    live_out: Optional[Union[str, IO[str]]] = None
    metrics_port: Optional[int] = None  # 0 = ephemeral port
    on_tick: Optional[Callable[..., None]] = None

    def effective_heartbeat_timeout(self) -> float:
        """The stall deadline: explicit, or 3 push intervals (>= 2s)."""
        if self.heartbeat_timeout > 0:
            return self.heartbeat_timeout
        base = self.interval_seconds if self.interval_seconds > 0 else 1.0
        return max(3.0 * base, 2.0)


@dataclass
class HealthEvent:
    """One structured health signal raised by the live aggregator."""

    kind: str  # STRAGGLER | STALL | DEADLOCK_SUSPECT
    node: Any
    t: float
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "node": self.node,
            "t": self.t,
            "detail": dict(self.detail),
        }


# ----------------------------------------------------------------------
# Node side
# ----------------------------------------------------------------------
class NodeTelemetry:
    """Per-node telemetry state living inside the node process.

    Single-threaded by construction (the node worker is a plain script
    loop), so no locking beyond what the registry already does.  The
    worker calls :meth:`on_commit` / :meth:`on_internal` as actions
    complete, asks :meth:`due` between actions, and ships
    :meth:`frame` headers as ``MSG_TELEMETRY`` — never while a
    protocol reply is pending.
    """

    def __init__(
        self,
        node: Any,
        interval_seconds: float = 1.0,
        every_commits: int = 0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.node = node
        self.interval_seconds = interval_seconds
        self.every_commits = every_commits
        self._clock = clock
        self.registry = MetricsRegistry()
        self._commits = self.registry.counter(
            NODE_COMMITS, "Rendezvous operations committed by this node"
        )
        self._sends = self.registry.counter(
            NODE_SENDS, "Send halves committed by this node"
        )
        self._receives = self.registry.counter(
            NODE_RECEIVES, "Receive halves committed by this node"
        )
        self._internal = self.registry.counter(
            NODE_INTERNAL, "Internal (compute) actions on this node"
        )
        self._block_hist = self.registry.histogram(
            NODE_BLOCK_SECONDS,
            help="Per-action blocking time on this node (seconds)",
        )
        self._block_sketch = self.registry.summary(
            NODE_BLOCK_QUANTILES,
            help="Streaming p50/p95/p99 of this node's blocking time",
        )
        # Hot-path state: the node worker calls ``on_commit`` on every
        # rendezvous, so the per-commit cost must be a few plain-object
        # operations — registry locks, bucket walks, and P2 marker
        # maintenance are all deferred to :meth:`frame` (``_fold``).
        self._pending: Deque[Tuple[Any, ...]] = deque()
        self._pending_blocks: List[float] = []
        self._n_commits = 0
        self._n_sends = 0
        self._n_receives = 0
        self._n_internal = 0
        self._sketch_skipped = 0
        self._events_dropped = 0
        self._seq = 0
        self._pushed_commits = 0
        self._last_push = clock()

    @property
    def commits(self) -> int:
        return self._n_commits

    def on_commit(
        self,
        op: str,
        peer: Any,
        seconds: float,
        now: Optional[float] = None,
    ) -> None:
        """A send/receive half committed after blocking ``seconds``.

        Pass ``now`` when the caller already holds a fresh clock
        reading (the worker times the block end anyway) — it saves a
        clock call on the per-commit path.
        """
        self._n_commits += 1
        if op == "send":
            self._n_sends += 1
        else:
            self._n_receives += 1
        self._pending_blocks.append(seconds)
        if len(self._pending) >= NODE_EVENT_QUEUE:
            self._pending.popleft()
            self._events_dropped += 1
        if now is None:
            now = self._clock()
        self._pending.append(("commit", peer, op, seconds, now))

    def on_internal(self, label: Optional[str] = None) -> None:
        self._n_internal += 1
        if len(self._pending) >= NODE_EVENT_QUEUE:
            self._pending.popleft()
            self._events_dropped += 1
        self._pending.append(("internal", None, label, None, self._clock()))

    def due(self, now: Optional[float] = None) -> bool:
        """Is a push due (N commits or T seconds since the last one)?"""
        now = self._clock() if now is None else now
        if (
            self.every_commits > 0
            and self._n_commits - self._pushed_commits
            >= self.every_commits
        ):
            return True
        return (
            self.interval_seconds > 0
            and now - self._last_push >= self.interval_seconds
        )

    def _fold(self) -> None:
        """Fold the hot-path accumulators into the registry.

        Counters are folded exactly.  Every blocking sample goes into
        the histogram; the P2 sketch sees the first
        ``SKETCH_EXACT_HEAD`` samples exactly and then a deterministic
        1-in-``SKETCH_DECIMATE`` subsample — quantiles of a uniform
        subsample converge to the stream's quantiles, and the sketch
        is the one per-sample cost too heavy for the commit path.
        """
        delta = self._n_commits - int(self._commits.value)
        if delta:
            self._commits.inc(delta)
        delta = self._n_sends - int(self._sends.value)
        if delta:
            self._sends.inc(delta)
        delta = self._n_receives - int(self._receives.value)
        if delta:
            self._receives.inc(delta)
        delta = self._n_internal - int(self._internal.value)
        if delta:
            self._internal.inc(delta)
        if not self._pending_blocks:
            return
        seen = int(self._block_hist.count)
        self._block_hist.observe_batch(self._pending_blocks)
        for offset, seconds in enumerate(self._pending_blocks):
            if seen + offset >= SKETCH_EXACT_HEAD:
                self._sketch_skipped += 1
                if self._sketch_skipped < SKETCH_DECIMATE:
                    continue
                self._sketch_skipped = 0
            self._block_sketch.observe(seconds)
        self._pending_blocks.clear()

    def frame(
        self, final: bool = False, now: Optional[float] = None
    ) -> Dict[str, Any]:
        """Build the next ``MSG_TELEMETRY`` header (drains the queue).

        Metric snapshots are *cumulative* (the full registry every
        time), so a lost or reordered frame never corrupts the merged
        view — the aggregator only keeps the latest per node.  Flight
        events are deltas and ride along at most once.
        """
        now = self._clock() if now is None else now
        self._fold()
        events = [
            {
                "kind": kind,
                "process": self.node,
                "peer": peer,
                "op" if kind == "commit" else "label": op_or_label,
                "seconds": seconds,
                "t": t,
            }
            for kind, peer, op_or_label, seconds, t in self._pending
        ]
        self._pending.clear()
        self._seq += 1
        self._pushed_commits = self._n_commits
        self._last_push = now
        return {
            "node": self.node,
            "seq": self._seq,
            "commits": self._n_commits,
            "final": final,
            "t_wall": time.time(),
            "metrics": self.registry.snapshot(),
            "events": events,
            "events_dropped": self._events_dropped,
        }


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
class _NodeState:
    __slots__ = (
        "samples",
        "last_seen",
        "finished",
        "latest",
        "commits",
        "frames",
        "events_dropped",
        "straggler",
        "stalled",
    )

    def __init__(self, window: int):
        # (receive_time, cumulative_commits, block_p95 | None)
        self.samples: Deque[Tuple[float, int, Optional[float]]] = deque(
            maxlen=window
        )
        self.last_seen: Optional[float] = None
        self.finished = False
        self.latest: Dict[str, Dict[str, Any]] = {}
        self.commits = 0
        self.frames = 0
        self.events_dropped = 0
        self.straggler = False
        self.stalled = False


class LiveAggregator:
    """Rolling cross-process aggregation and health detection.

    Fed by the coordinator: :meth:`on_frame` for every frame (the
    heartbeat signal), :meth:`on_telemetry` for ``MSG_TELEMETRY``
    headers, :meth:`on_runtime_event` for the coordinator's own
    rendezvous lifecycle events (the live partial flight record), and
    :meth:`check_health` on the serve-loop tick.  Thread-safe: the
    HTTP scrape endpoint reads the merged view from its own threads.
    """

    def __init__(
        self,
        nodes: Iterable[Any] = (),
        config: Optional[TelemetryConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config or TelemetryConfig()
        self._clock = clock
        self._lock = threading.RLock()
        self._nodes: Dict[Any, _NodeState] = {
            name: _NodeState(self.config.window) for name in nodes
        }
        self.ring = FlightRecorder(capacity=self.config.ring_capacity)
        self._events: List[HealthEvent] = []
        self._frames = 0
        self._started = clock()
        self._cycle_key: Optional[FrozenSet[Any]] = None
        #: Waits currently mirrored into the live ring, keyed by
        #: process (see :meth:`sync_open_waits`).
        self._mirrored_waits: Dict[Any, Tuple[str, Any]] = {}
        #: The started scrape endpoint, attached by the runner when
        #: ``config.metrics_port`` is set — the only way callers can
        #: learn an ephemeral (port 0) binding.
        self.endpoint: Optional["MetricsEndpoint"] = None
        self._live_file: Optional[IO[str]] = None
        self._owns_live_file = False
        target = self.config.live_out
        if isinstance(target, str):
            self._live_file = open(target, "w", encoding="utf-8")
            self._owns_live_file = True
        elif target is not None:
            self._live_file = target

    # -- feeding -------------------------------------------------------
    def _emit(self, obj: Dict[str, Any]) -> None:
        handle = self._live_file
        if handle is None:
            return
        handle.write(json.dumps(obj, sort_keys=True, default=str) + "\n")
        handle.flush()

    def on_frame(self, node: Any, now: Optional[float] = None) -> None:
        """A frame arrived from ``node`` — refresh its heartbeat.

        The transport batches these per tick (not per frame), so a
        heartbeat may be up to one tick stale — far inside the
        multi-second stall deadline.
        """
        now = self._clock() if now is None else now
        state = self._nodes.get(node)
        if state is None:
            with self._lock:
                state = self._nodes.setdefault(
                    node, _NodeState(self.config.window)
                )
        state.last_seen = now
        if state.stalled:
            state.stalled = False  # re-arm after recovery

    def on_telemetry(
        self, node: Any, header: Dict[str, Any], now: Optional[float] = None
    ) -> None:
        """Ingest one ``MSG_TELEMETRY`` header pushed by ``node``."""
        now = self._clock() if now is None else now
        metrics = header.get("metrics") or {}
        commits = int(header.get("commits", 0))
        p95 = _block_p95(metrics)
        with self._lock:
            state = self._nodes.setdefault(
                node, _NodeState(self.config.window)
            )
            state.last_seen = now
            state.latest = metrics
            state.commits = commits
            state.frames += 1
            state.events_dropped = int(header.get("events_dropped", 0))
            state.samples.append((now, commits, p95))
            if header.get("final"):
                state.finished = True
            self._frames += 1
        _count("live_telemetry_frames")
        self._emit(
            {
                "type": "telemetry",
                "node": node,
                "seq": header.get("seq"),
                "commits": commits,
                "final": bool(header.get("final")),
                "t": now,
                "t_wall": header.get("t_wall"),
                "metrics": metrics,
                "events": header.get("events") or [],
                "events_dropped": int(header.get("events_dropped", 0)),
            }
        )

    def on_runtime_event(
        self, kind: str, process: Any, peer: Any = None, **detail: Any
    ) -> None:
        """Record a coordinator-observed event into the live ring.

        The ring is deliberately coordinator-fed only: mixing
        node-pushed deltas into the same per-process seq streams would
        corrupt :func:`wait_for_summary`'s gap detection.
        """
        self.ring.record(kind, process, peer=peer, **detail)

    def sync_open_waits(
        self,
        waits: Dict[Any, Tuple[str, Any, float]],
        now: Optional[float] = None,
    ) -> None:
        """Mirror the coordinator's open waits into the live ring.

        ``waits`` maps each parked process to ``(op, peer, since)``.
        Called at tick cadence (not per event — that would tax every
        rendezvous), it records a ``block_start`` for each wait not
        mirrored yet and a matched ``block_end`` for each mirrored
        wait that has since resolved.  The ring therefore holds
        exactly the waits that persisted across a tick — the only
        ones a deadlock cycle can be made of — and
        :func:`wait_for_summary` reads it unchanged.  Resolution is
        detected by the process being parked differently (or not at
        all); a wait that times out instead goes through
        :meth:`on_wait_timeout` eagerly.
        """
        del now  # ring events are stamped on record
        with self._lock:
            mirrored = self._mirrored_waits
            for node, previous in list(mirrored.items()):
                op, peer, _ = waits.get(node, (None, None, 0.0))
                if previous == (op, peer):
                    continue
                prev_op, prev_peer = previous
                del mirrored[node]
                self.ring.record(
                    _flightrec.BLOCK_END,
                    node,
                    peer=prev_peer,
                    op=prev_op,
                    status="matched",
                )
            for node, (op, peer, since) in waits.items():
                if node in mirrored:
                    continue
                mirrored[node] = (op, peer)
                self.ring.record(
                    _flightrec.BLOCK_START,
                    node,
                    peer=peer,
                    op=op,
                    since=since,
                )

    def on_wait_timeout(
        self, node: Any, op: str, peer: Any, seconds: float
    ) -> None:
        """A parked wait died at the coordinator's deadline sweep."""
        with self._lock:
            self._mirrored_waits.pop(node, None)
            self.ring.record(
                _flightrec.BLOCK_END,
                node,
                peer=peer,
                op=op,
                status="timeout",
                seconds=seconds,
            )

    def on_node_finished(
        self, node: Any, now: Optional[float] = None
    ) -> None:
        now = self._clock() if now is None else now
        with self._lock:
            state = self._nodes.setdefault(
                node, _NodeState(self.config.window)
            )
            state.finished = True
            state.last_seen = now

    # -- detection -----------------------------------------------------
    def check_health(
        self,
        now: Optional[float] = None,
        blocked: FrozenSet[Any] = frozenset(),
    ) -> List[HealthEvent]:
        """Run all detectors; returns (and records) fresh events.

        ``blocked`` names nodes currently parked in a rendezvous at
        the coordinator: they are silent *because they are blocked*,
        which is the deadlock detector's domain, not the stall
        detector's.
        """
        now = self._clock() if now is None else now
        fresh: List[HealthEvent] = []
        fresh.extend(self._check_stalls(now, blocked))
        fresh.extend(self._check_stragglers(now))
        fresh.extend(self._check_deadlock(now))
        for event in fresh:
            self._emit({"type": "health", **event.to_dict()})
        return fresh

    def _check_stalls(
        self, now: float, blocked: FrozenSet[Any]
    ) -> List[HealthEvent]:
        deadline = self.config.effective_heartbeat_timeout()
        events: List[HealthEvent] = []
        with self._lock:
            for node, state in self._nodes.items():
                if state.finished or state.stalled or node in blocked:
                    continue
                if state.last_seen is None:
                    continue  # never connected; the runner handles it
                silent = now - state.last_seen
                if silent <= deadline:
                    continue
                state.stalled = True
                event = HealthEvent(
                    STALL,
                    node,
                    now,
                    {
                        "silent_seconds": silent,
                        "deadline_seconds": deadline,
                    },
                )
                self._events.append(event)
                events.append(event)
        for _ in events:
            _count("live_heartbeats_missed")
        return events

    def _check_stragglers(self, now: float) -> List[HealthEvent]:
        cfg = self.config
        events: List[HealthEvent] = []
        with self._lock:
            # Finished nodes stay in the fleet medians — their achieved
            # rate is evidence of fleet speed, and dropping them would
            # blind the detector exactly when the fast nodes finish
            # first (the classic straggler shape).  Only unfinished
            # nodes are straggler *candidates* below.
            rates: Dict[Any, float] = {}
            p95s: Dict[Any, float] = {}
            for node, state in self._nodes.items():
                if len(state.samples) < 2:
                    continue
                t0, c0, _ = state.samples[0]
                t1, c1, p95 = state.samples[-1]
                if t1 - t0 > 0:
                    rates[node] = (c1 - c0) / (t1 - t0)
                if p95 is not None:
                    p95s[node] = p95
            fleet_rate = (
                median(rates.values())
                if len(rates) >= cfg.straggler_min_nodes
                else 0.0
            )
            fleet_p95 = (
                median(p95s.values())
                if len(p95s) >= cfg.straggler_min_nodes
                else 0.0
            )
            for node, state in self._nodes.items():
                if state.finished:
                    continue
                slow_rate = (
                    fleet_rate > 0.0
                    and node in rates
                    and rates[node] < cfg.straggler_ratio * fleet_rate
                )
                slow_p95 = (
                    node in p95s
                    and p95s[node]
                    > cfg.block_p95_factor
                    * max(fleet_p95, cfg.block_p95_floor)
                )
                if not slow_rate and not slow_p95:
                    if node in rates:  # healthy again -> re-arm
                        state.straggler = False
                    continue
                if state.straggler:
                    continue  # episode already reported
                state.straggler = True
                event = HealthEvent(
                    STRAGGLER,
                    node,
                    now,
                    {
                        "reason": "commit_rate" if slow_rate else (
                            "block_p95"
                        ),
                        "rate": rates.get(node),
                        "fleet_median_rate": fleet_rate,
                        "block_p95": p95s.get(node),
                        "fleet_median_p95": fleet_p95,
                    },
                )
                self._events.append(event)
                events.append(event)
        for _ in events:
            _count("live_straggler_detected")
        return events

    def _check_deadlock(self, now: float) -> List[HealthEvent]:
        summary = wait_for_summary(self.ring)
        # Live suspicion reasons over *open* waits only.  A
        # ``status="timeout"`` entry names a wait the coordinator
        # already resolved (the node got MSG_TIMEOUT and is moving
        # again) — post-mortem analysis wants that edge, a live
        # detector re-reporting it forever does not.
        summary = WaitForSummary(
            [e for e in summary.blocked if e.status == "open"]
        )
        cycle = summary.deadlock_cycle()
        with self._lock:
            if not cycle:
                self._cycle_key = None
                return []
            key = frozenset(cycle)
            if key == self._cycle_key:
                return []  # same suspected cycle, already reported
            self._cycle_key = key
            event = HealthEvent(
                DEADLOCK_SUSPECT,
                cycle[0],
                now,
                {"cycle": list(cycle)},
            )
            self._events.append(event)
        _count("live_deadlock_suspected")
        return [event]

    # -- views ---------------------------------------------------------
    @property
    def frames_total(self) -> int:
        with self._lock:
            return self._frames

    @property
    def events(self) -> List[HealthEvent]:
        with self._lock:
            return list(self._events)

    def event_counts(self) -> Dict[str, int]:
        counts = {STRAGGLER: 0, STALL: 0, DEADLOCK_SUSPECT: 0}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def merged_registry(self) -> MetricsRegistry:
        """Fold the latest snapshot of every node into one registry.

        Snapshots are cumulative, so the fold is idempotent per node
        and the merged counter totals equal the per-node sums exactly.
        """
        with self._lock:
            snapshots = [
                (str(node), dict(state.latest))
                for node, state in self._nodes.items()
                if state.latest
            ]
        merged = MetricsRegistry()
        for _, snapshot in sorted(snapshots, key=lambda item: item[0]):
            merged.merge_snapshot(snapshot)
        return merged

    def render_prometheus(self) -> str:
        """The merged registry in Prometheus text format."""
        return render_prometheus(self.merged_registry())

    def node_rows(self, now: Optional[float] = None) -> List[Dict[str, Any]]:
        """Per-node dashboard rows, sorted by node name."""
        now = self._clock() if now is None else now
        rows: List[Dict[str, Any]] = []
        with self._lock:
            for node, state in self._nodes.items():
                rate = None
                if len(state.samples) >= 2:
                    t0, c0, _ = state.samples[0]
                    t1, c1, _ = state.samples[-1]
                    if t1 - t0 > 0:
                        rate = (c1 - c0) / (t1 - t0)
                quantiles = _block_quantiles(state.latest)
                rows.append(
                    {
                        "node": node,
                        "commits": state.commits,
                        "rate": rate,
                        "p50": quantiles.get(0.5),
                        "p95": quantiles.get(0.95),
                        "age": (
                            now - state.last_seen
                            if state.last_seen is not None
                            else None
                        ),
                        "frames": state.frames,
                        "finished": state.finished,
                        "straggler": state.straggler,
                        "stalled": state.stalled,
                    }
                )
        rows.sort(key=lambda row: str(row["node"]))
        return rows

    def elapsed(self, now: Optional[float] = None) -> float:
        now = self._clock() if now is None else now
        return now - self._started

    def close(self) -> None:
        """Write the trailing summary line and release the sink."""
        counts = self.event_counts()
        with self._lock:
            commits = sum(s.commits for s in self._nodes.values())
            reporting = sum(
                1 for s in self._nodes.values() if s.frames > 0
            )
        self._emit(
            {
                "type": "summary",
                "frames": self.frames_total,
                "nodes_reporting": reporting,
                "commits": commits,
                "events": counts,
            }
        )
        if self._owns_live_file and self._live_file is not None:
            self._live_file.close()
        self._live_file = None


def _block_quantiles(
    snapshot: Dict[str, Dict[str, Any]]
) -> Dict[float, float]:
    data = snapshot.get(NODE_BLOCK_QUANTILES) or {}
    quantiles = data.get("quantiles") or {}
    out: Dict[float, float] = {}
    for key, value in quantiles.items():
        try:
            out[float(key)] = float(value)
        except (TypeError, ValueError):
            continue
    return out


def _block_p95(snapshot: Dict[str, Dict[str, Any]]) -> Optional[float]:
    return _block_quantiles(snapshot).get(0.95)


# ----------------------------------------------------------------------
# Dashboard
# ----------------------------------------------------------------------
def _fmt(value: Optional[float], scale: float = 1.0, digits: int = 1) -> str:
    if value is None:
        return "-"
    return f"{value * scale:.{digits}f}"


def render_top(
    aggregator: LiveAggregator, now: Optional[float] = None
) -> str:
    """One frame of the in-terminal dashboard (``repro obs top``)."""
    rows = aggregator.node_rows(now)
    counts = aggregator.event_counts()
    commits = sum(row["commits"] for row in rows)
    finished = sum(1 for row in rows if row["finished"])
    reporting = sum(1 for row in rows if row["frames"] > 0)
    elapsed = aggregator.elapsed(now)
    rate = commits / elapsed if elapsed > 0 else 0.0
    lines = [
        (
            f"live telemetry  elapsed {elapsed:6.1f}s  "
            f"nodes {reporting}/{len(rows)} reporting, "
            f"{finished} finished"
        ),
        (
            f"frames {aggregator.frames_total}  commits {commits} "
            f"({rate:.1f}/s)  health: "
            f"{counts.get(STRAGGLER, 0)} straggler, "
            f"{counts.get(STALL, 0)} stall, "
            f"{counts.get(DEADLOCK_SUSPECT, 0)} deadlock"
        ),
        (
            f"{'node':<10} {'commits':>8} {'rate/s':>8} "
            f"{'p50ms':>8} {'p95ms':>8} {'age_s':>6}  state"
        ),
    ]
    for row in rows:
        if row["finished"]:
            state = "done"
        elif row["stalled"]:
            state = "STALLED"
        elif row["straggler"]:
            state = "STRAGGLER"
        elif row["frames"] == 0:
            state = "waiting"
        else:
            state = "ok"
        lines.append(
            f"{str(row['node']):<10} {row['commits']:>8} "
            f"{_fmt(row['rate']):>8} "
            f"{_fmt(row['p50'], 1000.0, 2):>8} "
            f"{_fmt(row['p95'], 1000.0, 2):>8} "
            f"{_fmt(row['age']):>6}  {state}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# HTTP scrape endpoint
# ----------------------------------------------------------------------
class MetricsEndpoint:
    """Opt-in ``/metrics`` endpoint over stdlib ``http.server``.

    Serves the aggregator's *merged* Prometheus text while the run is
    live, from a daemon thread, bound to localhost by default.  Port
    ``0`` picks an ephemeral port (read :attr:`port` after
    :meth:`start`).
    """

    def __init__(
        self,
        aggregator: LiveAggregator,
        port: int = 0,
        host: str = "127.0.0.1",
    ):
        self._aggregator = aggregator
        self._host = host
        self._requested_port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self.port: Optional[int] = None

    def start(self) -> "MetricsEndpoint":
        aggregator = self._aggregator

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API)
                if self.path.split("?", 1)[0] != "/metrics":
                    self.send_error(404, "only /metrics is served")
                    return
                body = aggregator.render_prometheus().encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type",
                    "text/plain; version=0.0.4; charset=utf-8",
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                pass  # scrapes must not spam the coordinator's stderr

        self._server = ThreadingHTTPServer(
            (self._host, self._requested_port), Handler
        )
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-endpoint",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}/metrics"

    def close(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
