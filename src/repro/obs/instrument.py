"""Zero-overhead-when-disabled instrumentation hooks.

Instrumented modules (``core/vector.py``, ``clocks/online.py``,
``sim/runtime.py``, ...) never talk to a registry directly; they read
two module-level attributes *at call time*:

* :data:`metrics` — an :class:`ObsMetrics` bundle of pre-resolved
  counters/gauges/histograms, or ``None`` when disabled;
* :data:`tracer` — the active :class:`~repro.obs.tracing.Tracer`, or
  ``None`` when disabled.

The disabled fast path is therefore one attribute load and a ``None``
test — no allocation, no lock, no call — which is what lets the hooks
live inside ``VectorTimestamp.__le__`` without taxing every comparison
in the library (the overhead guard test in ``tests/obs`` pins this
down with ``tracemalloc``).  :func:`span` returns the shared
:data:`~repro.obs.tracing.NULL_SPAN` singleton when disabled, so
``with instrument.span(...):`` is equally free.

Enable/disable is process-global (matching the process-global nature
of the measured costs) and re-entrant; :func:`enabled_session` scopes
it for tests and the CLI.  Modules must read the attributes through
the module object (``instrument.metrics``), never ``from``-import the
values — a bound copy would go stale on enable/disable.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.metrics import (
    BYTE_BUCKETS,
    DURATION_BUCKETS,
    MetricsRegistry,
)
from repro.obs.tracing import NULL_SPAN, Tracer

#: Worst-case bytes one vector component occupies on the wire (a
#: fixed-width 64-bit integer).  The actual piggyback accounting in
#: :func:`piggyback_size_bytes` uses the varint encoding; this constant
#: remains the conservative cap used by capacity planning
#: (``apps/monitor.py``) and the fast path's bulk worst-case counter.
COMPONENT_BYTES = 8


class ObsMetrics:
    """The standard metric catalog, pre-resolved against one registry.

    Every instrumented call site reaches its metric through an
    attribute here, so enabling observability pays the name lookup
    once, not per event.  See ``docs/observability.md`` for the
    metric-by-metric paper cross-references.
    """

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self.messages_timestamped = registry.counter(
            "messages_timestamped_total",
            "Messages assigned a vector timestamp (receiver side)",
        )
        self.acks_processed = registry.counter(
            "acks_processed_total",
            "Figure 5 acknowledgements merged on the sender side",
        )
        self.vector_comparisons = registry.counter(
            "vector_comparisons_total",
            "Component-wise vector order tests (Equation 2)",
        )
        self.vector_joins = registry.counter(
            "vector_joins_total",
            "Component-wise joins (lines 5/9 of Figure 5)",
        )
        self.piggyback_bytes_total = registry.counter(
            "piggyback_bytes_total",
            "Total clock payload piggybacked on messages and acks",
        )
        self.piggyback_bytes = registry.histogram(
            "piggyback_bytes",
            buckets=BYTE_BUCKETS,
            help="Clock payload bytes piggybacked per message",
        )
        self.rendezvous_total = registry.counter(
            "rendezvous_total",
            "Committed synchronous rendezvous (runtime)",
        )
        self.rendezvous_wait_seconds = registry.histogram(
            "rendezvous_wait_seconds",
            buckets=DURATION_BUCKETS,
            help="Blocking time inside a rendezvous (send ack wait / "
            "receive offer wait)",
        )
        self.rendezvous_block_seconds = registry.histogram(
            "rendezvous_block_seconds",
            buckets=DURATION_BUCKETS,
            help="Per-match blocking time of the two sides of a "
            "committed rendezvous (receiver wait-for-offer and sender "
            "wait-for-ack), recorded when the match commits",
        )
        self.audit_pairs_checked = registry.counter(
            "audit_pairs_checked_total",
            "Message pairs cross-checked against ground-truth "
            "sync-precedes by the live Theorem 4 audit",
        )
        self.audit_violations = registry.counter(
            "audit_violations_total",
            "Audit cross-checks that contradicted Theorem 4 or a "
            "Theorem 5/8 size bound (should stay zero)",
        )
        self.vector_component_count = registry.gauge(
            "vector_component_count",
            "Components per online timestamp (= edge-decomposition size)",
        )
        self.piggyback_delta_bytes = registry.counter(
            "piggyback_delta_bytes_total",
            "Piggyback bytes actually emitted by the non-full wire "
            "codecs (delta pairs, full-resync frames, bounded entries)",
        )
        self.delta_resync_total = registry.counter(
            "delta_resync_total",
            "Full-vector resync frames emitted by the delta piggyback "
            "codec (periodic, forced, or size-fallback)",
        )
        self.bounded_false_concurrency_rate = registry.gauge(
            "bounded_false_concurrency_rate",
            "Measured fraction of truly ordered message pairs that "
            "bounded-K timestamps report as concurrent",
        )
        self.decomposition_size = registry.gauge(
            "decomposition_size",
            "Edge groups produced by the active decomposition",
        )
        self.decomposition_bound_n_minus_2 = registry.gauge(
            "decomposition_bound_n_minus_2",
            "The N-2 half of the Theorem 5 bound",
        )
        self.decomposition_bound_cover = registry.gauge(
            "decomposition_bound_cover",
            "Vertex-cover half of the Theorem 5 bound (beta(G) when the "
            "exact cover was computed, else a greedy upper bound)",
        )
        self.theorem5_bound = registry.gauge(
            "theorem5_bound",
            "min(beta(G), N-2): Theorem 5's cap on the decomposition size",
        )
        self.offline_width = registry.gauge(
            "offline_width",
            "width(M, sync-precedes): the offline vector size (Figure 9)",
        )
        self.theorem8_bound = registry.gauge(
            "theorem8_bound",
            "floor(N_active / 2): Theorem 8's cap on the offline width",
        )
        self.lattice_ideals_enumerated = registry.counter(
            "lattice_ideals_enumerated_total",
            "Ideals (consistent global states) produced by the "
            "chain-indexed lattice kernel",
        )
        self.lattice_enumeration_seconds = registry.histogram(
            "lattice_enumeration_seconds",
            buckets=DURATION_BUCKETS,
            help="Wall-clock seconds per lattice-kernel traversal "
            "(ideals/sec = lattice_ideals_enumerated_total / sum)",
        )
        self.monitor_ingested = registry.counter(
            "monitor_ingested_total",
            "Records ingested by the causal monitor",
        )
        self.monitor_queries = registry.counter(
            "monitor_queries_total",
            "Precedence/concurrency queries answered by the monitor",
        )
        self.flight_events_dropped = registry.counter(
            "flight_events_dropped_total",
            "Flight-recorder events evicted by the bounded ring "
            "(non-zero means post-mortems see a truncated suffix)",
        )
        self.live_telemetry_frames = registry.counter(
            "live_telemetry_frames_total",
            "TELEMETRY frames ingested by the coordinator-side "
            "live aggregator (repro.obs.live)",
        )
        self.live_straggler_detected = registry.counter(
            "live_straggler_detected_total",
            "Straggler episodes raised by the live aggregator "
            "(per-node commit rate or block-time p95 outliers)",
        )
        self.live_heartbeats_missed = registry.counter(
            "live_heartbeats_missed_total",
            "Stall episodes raised by the live aggregator (node "
            "silent past its heartbeat deadline while not parked "
            "in a rendezvous)",
        )
        self.live_deadlock_suspected = registry.counter(
            "live_deadlock_suspected_total",
            "Deadlock-suspicion episodes raised by running the "
            "wait-for analysis over the live partial flight record",
        )
        self.parallel_shards_total = registry.counter(
            "parallel_shards_total",
            "Causally independent shards executed by the parallel "
            "stamping/closure engine (repro.core.parallel)",
        )
        self.parallel_merge_seconds = registry.histogram(
            "parallel_merge_seconds",
            buckets=DURATION_BUCKETS,
            help="Wall-clock seconds spent merging shard results back "
            "into the serial-identical output (timestamps, closed rows, "
            "chain partition)",
        )
        self.rendezvous_block_quantiles = registry.summary(
            "rendezvous_block_quantile_seconds",
            help="Streaming p50/p95/p99 of per-side rendezvous "
            "blocking time (P² sketch over the same observations "
            "as rendezvous_block_seconds)",
        )
        self.piggyback_quantiles = registry.summary(
            "piggyback_quantile_bytes",
            help="Streaming p50/p95/p99 of per-message piggyback "
            "payload bytes (transport-side P² sketch)",
        )
        self.stamp_latency_quantiles = registry.summary(
            "stamp_latency_seconds",
            help="Streaming p50/p95/p99 of per-rendezvous stamping "
            "latency (clock on_receive + on_acknowledgement work)",
        )


#: Active metric bundle, or ``None`` when observability is disabled.
#: Read at call time via ``instrument.metrics`` — never from-import.
metrics: Optional[ObsMetrics] = None

#: Active tracer, or ``None`` when observability is disabled.
tracer: Optional[Tracer] = None

_state_lock = threading.Lock()


def is_enabled() -> bool:
    """True when instrumentation hooks are live."""
    return metrics is not None


def enable(
    registry: Optional[MetricsRegistry] = None,
    trace_capacity: int = 4096,
    active_tracer: Optional[Tracer] = None,
) -> ObsMetrics:
    """Turn the hooks on; idempotent when already enabled.

    Returns the active :class:`ObsMetrics` bundle.  Supplying a
    ``registry`` (or ``active_tracer``) replaces the current one, so a
    fresh ``MetricsRegistry()`` gives a measurement a clean slate.
    """
    global metrics, tracer
    with _state_lock:
        if registry is None and metrics is not None:
            if active_tracer is not None:
                tracer = active_tracer
            return metrics
        if registry is None:
            registry = MetricsRegistry()
        bundle = ObsMetrics(registry)
        if active_tracer is None:
            active_tracer = Tracer(capacity=trace_capacity)
        tracer = active_tracer
        metrics = bundle
        return bundle


def disable() -> None:
    """Turn the hooks off; instrumented paths revert to no-ops."""
    global metrics, tracer
    with _state_lock:
        metrics = None
        tracer = None


def get_registry() -> MetricsRegistry:
    """The active registry; enables observability if it was off."""
    bundle = metrics
    if bundle is None:
        bundle = enable()
    return bundle.registry


def get_tracer() -> Tracer:
    """The active tracer; enables observability if it was off."""
    if tracer is None:
        enable()
    assert tracer is not None
    return tracer


def span(name: str, **attributes):
    """A span when enabled, the shared no-op otherwise.

    Usage at instrumented sites::

        with instrument.span("rendezvous.send", sender=s) as sp:
            ...
            sp.set_attribute("blocking_seconds", waited)

    The ``sp`` object is inert when disabled, so call sites need no
    branching; hot loops that cannot afford the keyword-dict should
    pre-check ``instrument.tracer is not None`` instead.
    """
    active = tracer
    if active is None:
        return NULL_SPAN
    return active.span(name, **attributes)


@contextmanager
def enabled_session(
    registry: Optional[MetricsRegistry] = None,
    trace_capacity: int = 4096,
) -> Iterator[ObsMetrics]:
    """Scoped enable/restore — the CLI and tests wrap runs in this."""
    global metrics, tracer
    previous = (metrics, tracer)
    disable()
    if registry is None:
        registry = MetricsRegistry()
    bundle = enable(registry, trace_capacity=trace_capacity)
    try:
        yield bundle
    finally:
        with _state_lock:
            metrics, tracer = previous


class Instrumented:
    """Mixin giving classes uniform access to the live hooks.

    Subclasses call ``self._obs_metrics()`` (``None`` when disabled)
    and ``self._obs_span(name, **attrs)`` (no-op when disabled) instead
    of importing this module at every site.
    """

    @staticmethod
    def _obs_metrics() -> Optional[ObsMetrics]:
        return metrics

    @staticmethod
    def _obs_span(name: str, **attributes):
        active = tracer
        if active is None:
            return NULL_SPAN
        return active.span(name, **attributes)


def varint_size(value: int) -> int:
    """Bytes of one component under unsigned LEB128 (7 bits/byte)."""
    if value < 0x80:  # the overwhelmingly common case: one byte
        return 1
    size = 1
    value >>= 7
    while value:
        size += 1
        value >>= 7
    return size


def piggyback_size_bytes(vector) -> int:
    """Wire size of one piggybacked vector under varint encoding.

    Each component is an unsigned LEB128 varint (1 byte below 128,
    growing by 7-bit groups), which is the encoding the performance
    docs assume; small early-run counters cost 1 byte, not 8.  Empty or
    ``None`` vectors piggyback nothing and cost 0 bytes.  Components
    that are not non-negative ints (foreign timestamp types) fall back
    to the :data:`COMPONENT_BYTES` fixed-width cap.
    """
    if vector is None:
        return 0
    total = 0
    for component in vector:
        if isinstance(component, int) and component >= 0:
            total += varint_size(component)
        else:
            total += COMPONENT_BYTES
    return total
