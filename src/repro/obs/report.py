"""Unified bench-trajectory report over the ``BENCH_*.json`` snapshots.

Each perf PR leaves a snapshot at the repo root — ``BENCH_obs.json``
(hook overhead), ``BENCH_batch.json`` (fast-path stamping),
``BENCH_offline.json`` (Figure 9 kernel), ``BENCH_lattice.json``
(ideal enumeration) — but until now nothing aggregated them: the bench
*trajectory* was invisible.  This module merges every snapshot into one
normalized report, renders it (text / JSON / Markdown), and implements
a regression gate so CI can compare the current snapshots against a
committed baseline and flag drift.

Normalization is schema-light on purpose: a snapshot is a JSON object
whose top-level entries are either scalars or one-level sections of
scalars, and metric *names* carry the semantics —

* ``*_per_sec`` and ``*speedup*`` are throughput-like (higher is
  better) and participate in the regression gate;
* ``*overhead_ratio*`` is cost-like (lower is better) and gated;
* ``*_bytes_per_message`` and piggyback byte totals are wire-cost
  metrics (lower is better) and gated;
* ``*false_concurrency_rate*`` is an accuracy diagnostic (lower is
  better) rendered but not gated — it depends on the chosen K, not on
  code regressions;
* ``*seconds*`` are informational (machine-dependent absolutes) and
  rendered but never gated.

So future benchmarks join the trajectory just by following the naming
convention — no registry edits needed.

A baseline may additionally carry a top-level ``hard_gate`` block::

    "hard_gate": {"patterns": ["runtime/*/piggyback*"], "tolerance": 0.1}

Metrics whose key matches one of the ``fnmatch`` patterns are *hard*
gated: a regression beyond the hard tolerance fails the run even when
the caller asked for ``--warn-only``.  This is how the wire-format
bytes-per-message rows are kept from silently regressing.

Pattern entries may also be objects carrying their own tolerance::

    "hard_gate": {
        "patterns": [
            "runtime/*/piggyback*",
            {"pattern": "obs/live_telemetry/*overhead_ratio*",
             "tolerance": 0.05},
        ],
        "tolerance": 0.1
    }

A plain string uses the block-level tolerance; an object overrides it
for keys it matches (first matching entry wins).  This lets one
baseline gate wire bytes at 10% and telemetry overhead at 5%.
"""

from __future__ import annotations

import fnmatch
import json
import pathlib
from typing import Dict, List, Optional, Tuple, Union

from repro.exceptions import ReproError

SCHEMA = "repro-bench-report/1"

#: Glob the loader uses to find snapshots at a repo root.
BENCH_GLOB = "BENCH_*.json"


class BenchReportError(ReproError):
    """Raised on unreadable snapshots or malformed baselines."""


def classify_metric(name: str) -> Tuple[str, bool]:
    """``(direction, gated)`` for a metric name.

    Direction is ``"higher"`` (better), ``"lower"`` (better), or
    ``""`` (no preference); ``gated`` says whether the regression gate
    compares it against the baseline.
    """
    if name.endswith("_per_sec"):
        return "higher", True
    if "speedup" in name:
        return "higher", True
    if "overhead_ratio" in name:
        return "lower", True
    if "false_concurrency_rate" in name:
        return "lower", False
    if name.endswith("bytes_per_message"):
        return "lower", True
    if "piggyback" in name and "bytes" in name:
        return "lower", True
    if "seconds" in name:
        return "lower", False
    return "", False


class BenchMetric:
    """One normalized scalar from one snapshot."""

    __slots__ = ("key", "source", "section", "name", "value",
                 "direction", "gated")

    def __init__(
        self,
        source: str,
        section: str,
        name: str,
        value: float,
        direction: str,
        gated: bool,
    ):
        self.source = source
        self.section = section
        self.name = name
        self.value = value
        self.direction = direction
        self.gated = gated
        parts = [source] + ([section] if section else []) + [name]
        self.key = "/".join(parts)

    def to_dict(self) -> Dict[str, object]:
        return {
            "value": self.value,
            "direction": self.direction,
            "gated": self.gated,
        }

    def __repr__(self) -> str:
        return f"BenchMetric({self.key}={self.value})"


class HardGate:
    """Baseline-declared metrics that must never regress past tolerance.

    ``patterns`` are ``fnmatch`` globs over metric keys (e.g.
    ``runtime/*/piggyback*``).  A matching gated metric that regresses
    beyond its hard tolerance is a *hard* failure: the comparison
    fails even under ``--warn-only``.

    An entry is either a plain glob string (gated at the block-level
    ``tolerance``) or a ``{"pattern": ..., "tolerance": ...}`` object
    carrying its own tolerance.  The first matching entry wins, so
    order specific overrides before broad globs.
    """

    __slots__ = ("entries", "tolerance")

    def __init__(self, patterns: List[object], tolerance: float = 0.1):
        if tolerance < 0:
            raise BenchReportError(
                f"hard gate tolerance must be non-negative, got {tolerance}"
            )
        self.tolerance = float(tolerance)
        self.entries: List[Tuple[str, Optional[float]]] = []
        for item in patterns:
            if isinstance(item, dict):
                if "pattern" not in item:
                    raise BenchReportError(
                        "hard_gate pattern objects need a 'pattern' key"
                    )
                per = item.get("tolerance")
                if per is not None:
                    per = float(per)
                    if per < 0:
                        raise BenchReportError(
                            "hard gate tolerance must be non-negative, "
                            f"got {per} for {item['pattern']!r}"
                        )
                self.entries.append((str(item["pattern"]), per))
            else:
                self.entries.append((str(item), None))

    @property
    def patterns(self) -> List[str]:
        return [pattern for pattern, _ in self.entries]

    def matches(self, key: str) -> bool:
        return any(
            fnmatch.fnmatch(key, pattern) for pattern, _ in self.entries
        )

    def tolerance_for(self, key: str) -> Optional[float]:
        """The hard tolerance for ``key``, or ``None`` when unmatched.

        Per-entry tolerances override the block tolerance; the first
        matching entry decides.
        """
        for pattern, per in self.entries:
            if fnmatch.fnmatch(key, pattern):
                return self.tolerance if per is None else per
        return None

    def to_dict(self) -> Dict[str, object]:
        patterns: List[object] = [
            pattern
            if per is None
            else {"pattern": pattern, "tolerance": per}
            for pattern, per in self.entries
        ]
        return {"patterns": patterns, "tolerance": self.tolerance}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "HardGate":
        if not isinstance(data, dict) or "patterns" not in data:
            raise BenchReportError(
                "hard_gate must be an object with a 'patterns' list"
            )
        patterns = data["patterns"]
        if not isinstance(patterns, list):
            raise BenchReportError("hard_gate 'patterns' must be a list")
        try:
            tolerance = float(data.get("tolerance", 0.1))
        except (TypeError, ValueError) as exc:
            raise BenchReportError(
                f"hard_gate 'tolerance' must be a number: {exc}"
            ) from exc
        return cls(patterns=patterns, tolerance=tolerance)


class BenchReport:
    """The merged, normalized view of every loaded snapshot."""

    def __init__(
        self,
        sources: Dict[str, Dict[str, object]],
        metrics: List[BenchMetric],
        hard_gate: Optional[HardGate] = None,
    ):
        self.sources = sources
        self.metrics = metrics
        self.hard_gate = hard_gate

    def metric_map(self) -> Dict[str, BenchMetric]:
        return {metric.key: metric for metric in self.metrics}

    def gated_metrics(self) -> List[BenchMetric]:
        return [metric for metric in self.metrics if metric.gated]

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "schema": SCHEMA,
            "sources": self.sources,
            "metrics": {
                metric.key: metric.to_dict() for metric in self.metrics
            },
        }
        if self.hard_gate is not None:
            data["hard_gate"] = self.hard_gate.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BenchReport":
        if not isinstance(data, dict) or "metrics" not in data:
            raise BenchReportError(
                "baseline is not a normalized bench report "
                "(missing 'metrics'; generate one with "
                "'repro obs report --report-format json')"
            )
        if not isinstance(data["metrics"], dict):
            raise BenchReportError(
                "baseline 'metrics' must be an object keyed by metric"
            )
        metrics: List[BenchMetric] = []
        for key, record in data["metrics"].items():
            parts = key.split("/")
            source = parts[0]
            name = parts[-1]
            section = "/".join(parts[1:-1])
            direction, gated = classify_metric(name)
            try:
                value = float(record["value"])
            except (KeyError, TypeError, ValueError) as exc:
                raise BenchReportError(
                    f"baseline metric {key!r} has no numeric 'value': "
                    f"{exc}"
                ) from exc
            metrics.append(
                BenchMetric(
                    source=source,
                    section=section,
                    name=name,
                    value=value,
                    direction=record.get("direction", direction),
                    gated=bool(record.get("gated", gated)),
                )
            )
        sources = data.get("sources", {})
        hard_gate = None
        if "hard_gate" in data:
            hard_gate = HardGate.from_dict(data["hard_gate"])
        return cls(sources=dict(sources), metrics=metrics,
                   hard_gate=hard_gate)

    def __len__(self) -> int:
        return len(self.metrics)


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def _flatten(
    source: str, data: Dict[str, object]
) -> Tuple[Dict[str, object], List[BenchMetric]]:
    meta: Dict[str, object] = {}
    metrics: List[BenchMetric] = []

    def add(section: str, name: str, value) -> None:
        direction, gated = classify_metric(name)
        metrics.append(
            BenchMetric(
                source=source,
                section=section,
                name=name,
                value=float(value),
                direction=direction,
                gated=gated,
            )
        )

    for key, value in sorted(data.items()):
        if key == "generated_utc":
            meta["generated_utc"] = value
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            add("", key, value)
        elif isinstance(value, dict):
            for sub_key, sub_value in sorted(value.items()):
                if isinstance(sub_value, bool):
                    continue
                if isinstance(sub_value, (int, float)):
                    add(key, sub_key, sub_value)
                else:
                    meta.setdefault("annotations", {})[
                        f"{key}/{sub_key}"
                    ] = sub_value
        else:
            meta.setdefault("annotations", {})[key] = value
    return meta, metrics


def load_bench_file(path: Union[str, pathlib.Path]) -> BenchReport:
    """Normalize one ``BENCH_*.json`` snapshot."""
    path = pathlib.Path(path)
    source = path.stem
    if source.startswith("BENCH_"):
        source = source[len("BENCH_"):]
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchReportError(f"cannot read {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise BenchReportError(
            f"{path}: expected a JSON object at the top level"
        )
    meta, metrics = _flatten(source, data)
    meta["file"] = path.name
    return BenchReport(sources={source: meta}, metrics=metrics)


def load_bench_dir(
    root: Union[str, pathlib.Path] = ".",
    pattern: str = BENCH_GLOB,
) -> BenchReport:
    """Merge every ``BENCH_*.json`` under ``root`` into one report."""
    root = pathlib.Path(root)
    sources: Dict[str, Dict[str, object]] = {}
    metrics: List[BenchMetric] = []
    for path in sorted(root.glob(pattern)):
        partial = load_bench_file(path)
        sources.update(partial.sources)
        metrics.extend(partial.metrics)
    return BenchReport(sources=sources, metrics=metrics)


def load_baseline(path: Union[str, pathlib.Path]) -> BenchReport:
    """Load a committed baseline (a normalized report JSON)."""
    path = pathlib.Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchReportError(
            f"cannot read baseline {path}: {exc}"
        ) from exc
    return BenchReport.from_dict(data)


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------
class GateFinding:
    """One gated metric compared against the baseline."""

    __slots__ = ("key", "baseline", "current", "change", "direction")

    def __init__(
        self,
        key: str,
        baseline: float,
        current: float,
        change: float,
        direction: str,
    ):
        self.key = key
        self.baseline = baseline
        self.current = current
        self.change = change  # signed ratio: current/baseline - 1
        self.direction = direction

    def describe(self) -> str:
        return (
            f"{self.key}: {self.current:g} vs baseline "
            f"{self.baseline:g} ({self.change:+.1%}, "
            f"{self.direction} is better)"
        )

    def __repr__(self) -> str:
        return f"GateFinding({self.describe()})"


class GateResult:
    """Outcome of comparing a report against a baseline."""

    def __init__(
        self,
        tolerance: float,
        regressions: List[GateFinding],
        improvements: List[GateFinding],
        missing: List[str],
        hard_failures: Optional[List[GateFinding]] = None,
    ):
        self.tolerance = tolerance
        self.regressions = regressions
        self.improvements = improvements
        self.missing = missing
        self.hard_failures = hard_failures or []

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.hard_failures

    @property
    def hard_ok(self) -> bool:
        """True when no *hard-gated* metric regressed.

        Hard failures cannot be downgraded to warnings: callers honor
        ``--warn-only`` for ordinary regressions but must still fail
        when ``hard_ok`` is False.
        """
        return not self.hard_failures

    def describe(self) -> str:
        lines = [
            f"regression gate: tolerance {self.tolerance:.0%}, "
            f"{len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s), "
            f"{len(self.missing)} missing metric(s)"
        ]
        if self.hard_failures:
            lines[0] += f", {len(self.hard_failures)} HARD failure(s)"
        for finding in self.hard_failures:
            lines.append(f"  HARD FAIL  {finding.describe()}")
        for finding in self.regressions:
            lines.append(f"  REGRESSION {finding.describe()}")
        for finding in self.improvements:
            lines.append(f"  improved   {finding.describe()}")
        for key in self.missing:
            lines.append(f"  missing    {key} (in baseline only)")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        def rows(findings: List[GateFinding]) -> List[Dict[str, object]]:
            return [
                {
                    "key": f.key,
                    "baseline": f.baseline,
                    "current": f.current,
                    "change": f.change,
                    "direction": f.direction,
                }
                for f in findings
            ]

        return {
            "tolerance": self.tolerance,
            "ok": self.ok,
            "hard_ok": self.hard_ok,
            "hard_failures": rows(self.hard_failures),
            "regressions": rows(self.regressions),
            "improvements": rows(self.improvements),
            "missing": list(self.missing),
        }


def compare_reports(
    current: BenchReport,
    baseline: BenchReport,
    tolerance: float = 0.1,
) -> GateResult:
    """Gate ``current`` against ``baseline`` on the gated metrics.

    A gated metric regresses when it moves against its direction by
    more than ``tolerance`` (relative); it counts as an improvement
    when it moves the other way by more than ``tolerance``.  Metrics
    present only in the baseline are reported as missing (they fail no
    gate — a removed benchmark is a review question, not a perf bug).

    When the baseline declares a ``hard_gate`` block, metrics whose
    key matches one of its patterns use the hard tolerance and land in
    ``hard_failures`` instead of ``regressions`` — callers must fail
    on those even under warn-only reporting.
    """
    if tolerance < 0:
        raise BenchReportError(
            f"tolerance must be non-negative, got {tolerance}"
        )
    hard_gate = baseline.hard_gate
    current_map = current.metric_map()
    regressions: List[GateFinding] = []
    improvements: List[GateFinding] = []
    hard_failures: List[GateFinding] = []
    missing: List[str] = []
    for metric in baseline.metrics:
        if not metric.gated:
            continue
        counterpart = current_map.get(metric.key)
        if counterpart is None:
            missing.append(metric.key)
            continue
        if metric.value == 0:
            continue
        change = counterpart.value / metric.value - 1.0
        worse = -change if metric.direction == "higher" else change
        finding = GateFinding(
            key=metric.key,
            baseline=metric.value,
            current=counterpart.value,
            change=change,
            direction=metric.direction,
        )
        hard_tolerance = (
            hard_gate.tolerance_for(metric.key)
            if hard_gate is not None
            else None
        )
        if hard_tolerance is not None and worse > hard_tolerance:
            hard_failures.append(finding)
        elif worse > tolerance:
            regressions.append(finding)
        elif worse < -tolerance:
            improvements.append(finding)
    regressions.sort(key=lambda f: f.key)
    improvements.sort(key=lambda f: f.key)
    hard_failures.sort(key=lambda f: f.key)
    return GateResult(
        tolerance=tolerance,
        regressions=regressions,
        improvements=improvements,
        missing=sorted(missing),
        hard_failures=hard_failures,
    )


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _format_value(metric: BenchMetric) -> str:
    value = metric.value
    if metric.name.endswith("_per_sec"):
        return f"{value:,.0f}/s"
    if "seconds" in metric.name:
        return f"{value:.6f}s"
    if "speedup" in metric.name:
        return f"{value:.2f}x"
    if metric.name.endswith("bytes_per_message"):
        return f"{value:.3f} B/msg"
    if "rate" in metric.name and abs(value) <= 1.0:
        return f"{value:.4f}"
    if abs(value - round(value)) < 1e-9 and abs(value) < 1e15:
        return str(int(round(value)))
    return f"{value:.4f}"


def _rows(report: BenchReport) -> List[List[str]]:
    rows: List[List[str]] = []
    for metric in report.metrics:
        flags = []
        if metric.direction:
            flags.append(f"{metric.direction} better")
        if metric.gated:
            flags.append("gated")
        rows.append(
            [
                metric.source,
                (f"{metric.section}/" if metric.section else "")
                + metric.name,
                _format_value(metric),
                ", ".join(flags),
            ]
        )
    return rows


_HEADERS = ["source", "metric", "value", "gate"]


def render_text(
    report: BenchReport, gate: Optional[GateResult] = None
) -> str:
    """Plain-text table plus the gate verdict (when one ran)."""
    rows = _rows(report)
    widths = [
        max(len(_HEADERS[i]), *(len(row[i]) for row in rows))
        if rows
        else len(_HEADERS[i])
        for i in range(len(_HEADERS))
    ]

    def line(cells: List[str]) -> str:
        return "  ".join(
            cell.ljust(widths[i]) for i, cell in enumerate(cells)
        ).rstrip()

    lines = [line(_HEADERS), line(["-" * w for w in widths])]
    lines.extend(line(row) for row in rows)
    lines.append("")
    lines.append(
        f"{len(report.metrics)} metric(s) from "
        f"{len(report.sources)} snapshot(s): "
        + ", ".join(sorted(report.sources))
    )
    if gate is not None:
        lines.append("")
        lines.append(gate.describe())
    return "\n".join(lines) + "\n"


def render_markdown(
    report: BenchReport, gate: Optional[GateResult] = None
) -> str:
    """GitHub-flavored Markdown rendering (for PR comments / docs)."""
    lines = [
        "| " + " | ".join(_HEADERS) + " |",
        "|" + "|".join("---" for _ in _HEADERS) + "|",
    ]
    lines.extend(
        "| " + " | ".join(row) + " |" for row in _rows(report)
    )
    if gate is not None:
        lines.append("")
        verdict = "**PASS**" if gate.ok else "**FAIL**"
        lines.append(
            f"Regression gate {verdict} at tolerance "
            f"{gate.tolerance:.0%}: {len(gate.regressions)} "
            f"regression(s), {len(gate.improvements)} improvement(s), "
            f"{len(gate.hard_failures)} hard failure(s)."
        )
        for finding in gate.hard_failures:
            lines.append(f"- HARD FAIL {finding.describe()}")
        for finding in gate.regressions:
            lines.append(f"- REGRESSION {finding.describe()}")
    return "\n".join(lines) + "\n"


def render_json(
    report: BenchReport, gate: Optional[GateResult] = None
) -> str:
    """The normalized report (the baseline format) as JSON."""
    data = report.to_dict()
    if gate is not None:
        data["gate"] = gate.to_dict()
    return json.dumps(data, indent=2, sort_keys=True) + "\n"
