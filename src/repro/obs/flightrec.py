"""Causal flight recorder: a bounded ring of runtime events.

The threaded rendezvous runtime (:mod:`repro.sim.runtime`) can hang on
an unmatched send, misorder under a scheduling bug, or lose a process
to an injected crash — and until now it left no post-mortem record.
The flight recorder is a fixed-capacity ring buffer of
:class:`FlightEvent` records — send offers, rendezvous commits,
blocking intervals, internal events, crashes — each carrying a
monotonic ``perf_counter`` time and a per-process sequence number, so
after a failure the last ``capacity`` events reconstruct what the
threads were doing when things went wrong.

Two post-mortem views are built in:

* :func:`wait_for_summary` — the "who is blocked on whom" table
  derived from unmatched or timed-out blocking intervals, including
  cycle detection over the wait-for edges (a cycle *is* the deadlock);
* :func:`reconstruct_computation` — rebuilds the partial
  :class:`~repro.sim.computation.SyncComputation` from the committed
  rendezvous events, so the messages that *did* complete can be
  re-timestamped and audited offline.

The hook discipline matches :mod:`repro.obs.instrument`: call sites
load the module attribute :data:`recorder` once and test it against
``None``, so a disabled recorder costs one attribute load per call and
allocates nothing (pinned by ``tests/obs/test_overhead_guard.py``).
Recording itself takes one short uncontended critical section per
event — the same cost profile as a ``Counter.inc`` — and never takes
any other lock, so it is safe to call while holding the transport
lock.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import (
    IO,
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.obs import instrument as _instrument

PathOrFile = Union[str, IO[str]]

# ----------------------------------------------------------------------
# Event kinds recorded by the built-in runtime instrumentation
# ----------------------------------------------------------------------
SEND_OFFER = "send_offer"  #: sender parked an offer in the inbox
RENDEZVOUS = "rendezvous"  #: a rendezvous committed (receiver side)
BLOCK_START = "block_start"  #: a thread started blocking (send/receive)
BLOCK_END = "block_end"  #: blocking ended ("matched" or "timeout")
INTERNAL = "internal"  #: a compute action was recorded
CRASH = "crash"  #: fault injection abandoned a script
SCRIPT_START = "script_start"  #: a process thread began its script
SCRIPT_END = "script_end"  #: a process thread finished its script
SCRIPT_ERROR = "script_error"  #: a process thread died on an exception
DEADLOCK = "deadlock"  #: the runner gave up waiting for a thread
AUDIT_VIOLATION = "audit_violation"  #: the live audit caught a bad pair

EVENT_KINDS = frozenset(
    {
        SEND_OFFER,
        RENDEZVOUS,
        BLOCK_START,
        BLOCK_END,
        INTERNAL,
        CRASH,
        SCRIPT_START,
        SCRIPT_END,
        SCRIPT_ERROR,
        DEADLOCK,
        AUDIT_VIOLATION,
    }
)


class FlightEvent:
    """One recorded runtime event.

    ``seq`` numbers events *per process* (1-based, gap-free even when
    the ring evicts old events), ``t`` is a monotonic
    :func:`time.perf_counter` value comparable across all events of one
    recorder, and ``detail`` carries kind-specific fields
    (``commit_order`` for rendezvous, ``op``/``status``/``seconds`` for
    blocking intervals, ...).
    """

    __slots__ = ("kind", "process", "peer", "seq", "t", "detail")

    def __init__(
        self,
        kind: str,
        process: Any,
        peer: Any,
        seq: int,
        t: float,
        detail: Dict[str, Any],
    ):
        self.kind = kind
        self.process = process
        self.peer = peer
        self.seq = seq
        self.t = t
        self.detail = detail

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable record (one JSONL line per event)."""
        return {
            "kind": self.kind,
            "process": self.process,
            "peer": self.peer,
            "seq": self.seq,
            "t": self.t,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "FlightEvent":
        return cls(
            kind=record["kind"],
            process=record["process"],
            peer=record.get("peer"),
            seq=record["seq"],
            t=record["t"],
            detail=dict(record.get("detail", {})),
        )

    def __repr__(self) -> str:
        peer = f" peer={self.peer!r}" if self.peer is not None else ""
        return (
            f"FlightEvent({self.kind}, {self.process!r}#{self.seq}"
            f"{peer}, t={self.t:.6f})"
        )


class FlightRecorder:
    """Fixed-capacity ring buffer of :class:`FlightEvent` records.

    Old events fall off the back once ``capacity`` is reached, so a
    long-lived instrumented runtime has a hard memory bound; the
    per-process sequence numbers and :attr:`dropped_count` make the
    eviction visible.  All methods are thread-safe; :meth:`record`
    holds one private lock for a few attribute updates and never calls
    out, so it cannot deadlock against the transport lock it is
    typically called under.
    """

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError(
                f"capacity must be positive, got {capacity}"
            )
        self._capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self._seqs: Dict[Any, int] = {}
        self._recorded = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    def record(
        self, kind: str, process: Any, peer: Any = None, **detail: Any
    ) -> FlightEvent:
        """Append one event; returns it (useful for tests)."""
        t = time.perf_counter()
        with self._lock:
            self._recorded += 1
            seq = self._seqs.get(process, 0) + 1
            self._seqs[process] = seq
            event = FlightEvent(kind, process, peer, seq, t, detail)
            evicting = len(self._events) == self._capacity
            self._events.append(event)
        if evicting:
            # Outside the ring lock (the recorder takes no other lock
            # while holding its own): surface the eviction as an obs
            # counter so truncated post-mortems are visible in metrics
            # long before anyone reads the ring.
            m = _instrument.metrics
            if m is not None:
                m.flight_events_dropped.inc()
        return event

    def events(self) -> List[FlightEvent]:
        """A snapshot of the ring, oldest first."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterator[FlightEvent]:
        return iter(self.events())

    @property
    def recorded_count(self) -> int:
        """Events recorded so far, including evicted ones."""
        with self._lock:
            return self._recorded

    @property
    def dropped_count(self) -> int:
        """Events evicted from the ring (or removed by :meth:`clear`)."""
        with self._lock:
            return self._recorded - len(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    # ------------------------------------------------------------------
    def dump_jsonl(self, target: PathOrFile) -> int:
        """Write the ring to ``target`` as JSON Lines; returns count.

        Non-JSON process identities are stringified (``default=str``),
        which is lossless for the usual string process names.
        """
        events = self.events()
        text = "".join(
            json.dumps(event.to_dict(), sort_keys=True, default=str)
            + "\n"
            for event in events
        )
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(text)
        else:
            target.write(text)
        return len(events)


def load_jsonl(source: PathOrFile) -> List[FlightEvent]:
    """Parse a flight-record JSONL dump back into events.

    A *trailing* partial line — the normal shape of a crash-time or
    live-streamed dump cut mid-write — is tolerated with a one-line
    warning on stderr instead of a traceback.  A malformed line
    anywhere else still raises, because it means the dump was mangled,
    not merely truncated.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = source.read()
    lines = [line.strip() for line in text.splitlines()]
    lines = [line for line in lines if line]
    events: List[FlightEvent] = []
    for index, line in enumerate(lines):
        try:
            events.append(FlightEvent.from_dict(json.loads(line)))
        except (json.JSONDecodeError, KeyError, TypeError):
            if index == len(lines) - 1:
                print(
                    "flightrec: ignoring trailing partial line in "
                    "JSONL dump (truncated write?)",
                    file=sys.stderr,
                )
                break
            raise
    return events


# ----------------------------------------------------------------------
# Truncation detection
# ----------------------------------------------------------------------
class TruncationSummary:
    """What a loaded flight record lost to ring eviction.

    Per-process sequence numbers are 1-based and gap-free at record
    time, and the ring evicts strictly oldest-first, so a pristine dump
    is a per-process *contiguous suffix*: a first surviving seq above 1
    means exactly ``first_seq - 1`` events of that process were
    evicted.  Mid-stream gaps cannot come from the ring itself — they
    mean the stream was filtered or merged after the fact — but they
    are detected too, because they void the same analyses.
    """

    __slots__ = ("first_seq", "lost_events", "gaps")

    def __init__(
        self,
        first_seq: Dict[Any, int],
        lost_events: int,
        gaps: Dict[Any, List[Tuple[int, int]]],
    ):
        #: First surviving per-process sequence number.
        self.first_seq = first_seq
        #: Events provably lost from the front of the record.
        self.lost_events = lost_events
        #: Mid-stream ``(after_seq, next_seq)`` holes per process.
        self.gaps = gaps

    @property
    def truncated(self) -> bool:
        return self.lost_events > 0 or bool(self.gaps)

    def describe(self) -> str:
        if not self.truncated:
            return "flight record is complete (no ring eviction)"
        parts: List[str] = []
        if self.lost_events:
            lost = ", ".join(
                f"{process!r} from seq {seq}"
                for process, seq in sorted(
                    self.first_seq.items(), key=lambda kv: str(kv[0])
                )
                if seq > 1
            )
            parts.append(
                f"ring eviction dropped {self.lost_events} leading "
                f"event(s) ({lost})"
            )
        for process, holes in sorted(
            self.gaps.items(), key=lambda kv: str(kv[0])
        ):
            spans = ", ".join(
                f"{a + 1}..{b - 1}" for a, b in holes
            )
            parts.append(
                f"{process!r} stream has mid-record gaps at seq {spans}"
            )
        return "; ".join(parts)


def truncation_summary(
    events: Union[FlightRecorder, Iterable[FlightEvent]],
) -> TruncationSummary:
    """Detect ring-eviction losses in a (possibly loaded) record."""
    first_seq: Dict[Any, int] = {}
    last_seq: Dict[Any, int] = {}
    gaps: Dict[Any, List[Tuple[int, int]]] = {}
    for event in _event_stream(events):
        process = event.process
        if process not in first_seq:
            first_seq[process] = event.seq
        else:
            previous = last_seq[process]
            if event.seq > previous + 1:
                gaps.setdefault(process, []).append(
                    (previous, event.seq)
                )
        last_seq[process] = event.seq
    lost = sum(seq - 1 for seq in first_seq.values())
    return TruncationSummary(first_seq, lost, gaps)


# ----------------------------------------------------------------------
# Module-level hook (same discipline as ``instrument.metrics``)
# ----------------------------------------------------------------------
#: The active recorder, or ``None`` when flight recording is off.
#: Instrumented sites read this *through the module object* at call
#: time (``_flightrec.recorder``) and test against ``None``.
recorder: Optional[FlightRecorder] = None

_state_lock = threading.Lock()


def is_recording() -> bool:
    """True when a flight recorder is installed."""
    return recorder is not None


def install(
    rec: Optional[FlightRecorder] = None, capacity: int = 4096
) -> FlightRecorder:
    """Install ``rec`` (or a fresh recorder) as the active recorder."""
    global recorder
    with _state_lock:
        if rec is None:
            rec = FlightRecorder(capacity)
        recorder = rec
        return rec


def uninstall() -> None:
    """Remove the active recorder; hooks revert to no-ops."""
    global recorder
    with _state_lock:
        recorder = None


@contextmanager
def recording_session(
    capacity: int = 4096, rec: Optional[FlightRecorder] = None
) -> Iterator[FlightRecorder]:
    """Scoped install/restore — tests and the CLI wrap runs in this."""
    global recorder
    previous = recorder
    active = install(rec, capacity)
    try:
        yield active
    finally:
        with _state_lock:
            recorder = previous


# ----------------------------------------------------------------------
# Post-mortem: wait-for summary
# ----------------------------------------------------------------------
class BlockedEntry:
    """One process observed blocked (still waiting, or timed out)."""

    __slots__ = ("process", "op", "peer", "since", "seconds", "status")

    def __init__(
        self,
        process: Any,
        op: str,
        peer: Any,
        since: float,
        seconds: Optional[float],
        status: str,
    ):
        self.process = process
        self.op = op  # "send" | "receive"
        self.peer = peer  # None means "any sender" (open receive)
        self.since = since
        self.seconds = seconds
        #: ``"open"`` — still waiting when the record was taken;
        #: ``"timeout"`` — the wait died; ``"unknown"`` — the record
        #: lost events after this wait started, so its outcome (and
        #: the matching ``block_end``) may have been evicted.
        self.status = status

    def describe(self) -> str:
        arrow = "->" if self.op == "send" else "<-"
        peer = "any" if self.peer is None else repr(self.peer)
        took = (
            f" after {self.seconds:.3f}s"
            if self.seconds is not None
            else ""
        )
        return (
            f"{self.process!r} blocked in {self.op} {arrow} {peer} "
            f"({self.status}{took})"
        )

    def __repr__(self) -> str:
        return f"BlockedEntry({self.describe()})"


class WaitForSummary:
    """The "who is blocked on whom" view of a flight record."""

    def __init__(self, blocked: List[BlockedEntry]):
        self.blocked = blocked

    def edges(self) -> List[Tuple[Any, Any]]:
        """``(blocked_process, waited_on_peer)`` pairs (peer known).

        ``"unknown"`` entries are excluded: a wait whose outcome fell
        off the ring is not evidence the process is *still* blocked,
        and treating it as a live edge fabricates deadlocks.
        """
        return [
            (entry.process, entry.peer)
            for entry in self.blocked
            if entry.peer is not None and entry.status != "unknown"
        ]

    def deadlock_cycle(self) -> Optional[List[Any]]:
        """A cycle in the wait-for graph, if one exists.

        Uses each process's *latest* blocked entry as its single
        outgoing edge (a thread waits on one rendezvous at a time), so
        cycle detection is a pointer chase.
        """
        waits_on: Dict[Any, Any] = {}
        for entry in self.blocked:  # later entries overwrite earlier
            if entry.peer is not None and entry.status != "unknown":
                waits_on[entry.process] = entry.peer
        for start in waits_on:
            seen: List[Any] = []
            node = start
            while node in waits_on and node not in seen:
                seen.append(node)
                node = waits_on[node]
            if node in seen:
                return seen[seen.index(node):]
        return None

    def describe(self) -> str:
        if not self.blocked:
            return "no blocked processes recorded"
        lines = [entry.describe() for entry in self.blocked]
        cycle = self.deadlock_cycle()
        if cycle is not None:
            chain = " -> ".join(repr(p) for p in cycle + [cycle[0]])
            lines.append(f"deadlock cycle: {chain}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"WaitForSummary({len(self.blocked)} blocked)"


def _event_stream(
    events: Union[FlightRecorder, Iterable[FlightEvent]],
) -> List[FlightEvent]:
    if isinstance(events, FlightRecorder):
        return events.events()
    return list(events)


def wait_for_summary(
    events: Union[FlightRecorder, Iterable[FlightEvent]],
) -> WaitForSummary:
    """Derive the blocked-process table from a flight record.

    A ``block_start`` with no matching ``block_end`` is an *open* wait
    (the thread was still parked when the record was taken); a
    ``block_end`` with ``status="timeout"`` is a wait that died.  Both
    name the process pair a deadlock investigation needs.

    An apparent open wait is only trustworthy when the record provably
    kept every later event of that process: if the per-process seq
    stream has a hole after the ``block_start``, the matching
    ``block_end`` may have been dropped, so the entry is downgraded to
    ``status="unknown"`` and excluded from the wait-for edges — a
    truncated record must not fabricate a live deadlock.
    """
    stream = _event_stream(events)
    blocked: List[BlockedEntry] = []
    open_waits: Dict[Any, FlightEvent] = {}
    # Highest per-process seq seen while the process's wait was open,
    # to detect holes between the block_start and the record's end.
    last_seq: Dict[Any, int] = {}
    gap_after: Dict[Any, bool] = {}
    for event in stream:
        process = event.process
        previous = last_seq.get(process)
        if previous is not None and event.seq > previous + 1:
            if process in open_waits:
                gap_after[process] = True
        last_seq[process] = event.seq
        if event.kind == BLOCK_START:
            open_waits[process] = event
            gap_after[process] = False
        elif event.kind == BLOCK_END:
            start = open_waits.pop(process, None)
            if event.detail.get("status") == "timeout":
                since = start.t if start is not None else event.t
                blocked.append(
                    BlockedEntry(
                        process=event.process,
                        op=event.detail.get("op", "?"),
                        peer=event.peer,
                        since=since,
                        seconds=event.detail.get("seconds"),
                        status="timeout",
                    )
                )
    for process, start in open_waits.items():
        blocked.append(
            BlockedEntry(
                process=process,
                op=start.detail.get("op", "?"),
                peer=start.peer,
                since=start.t,
                seconds=None,
                status=(
                    "unknown" if gap_after.get(process) else "open"
                ),
            )
        )
    blocked.sort(key=lambda entry: entry.since)
    return WaitForSummary(blocked)


# ----------------------------------------------------------------------
# Post-mortem: partial computation reconstruction
# ----------------------------------------------------------------------
def reconstruct_computation(
    events: Union[FlightRecorder, Iterable[FlightEvent]],
    topology,
    allow_partial_prefix: bool = False,
):
    """Rebuild the committed part of the run as a ``SyncComputation``.

    Rendezvous events carry their global commit order, so the rebuilt
    computation has exactly the message sequence the threads produced
    up to the failure — ready for re-timestamping, the Equation (1)
    checker, or :func:`repro.apps.recovery.find_orphans`.

    If the ring evicted early rendezvous events the true prefix is
    lost; that raises ``ValueError`` unless ``allow_partial_prefix`` is
    set (in which case the surviving suffix is renumbered from zero —
    fine for inspection, wrong for order-sensitive analyses).
    """
    from repro.sim.computation import SyncComputation

    commits = [
        event
        for event in _event_stream(events)
        if event.kind == RENDEZVOUS
    ]
    commits.sort(key=lambda event: event.detail["commit_order"])
    if commits and commits[0].detail["commit_order"] != 0:
        if not allow_partial_prefix:
            raise ValueError(
                f"flight record lost the first "
                f"{commits[0].detail['commit_order']} rendezvous "
                "event(s) to ring eviction; pass "
                "allow_partial_prefix=True to rebuild the suffix"
            )
    pairs = [(event.peer, event.process) for event in commits]
    return SyncComputation.from_pairs(topology, pairs)
