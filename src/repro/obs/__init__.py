"""Observability: metrics, tracing, export, and runtime hooks.

The layer turns the paper's quantitative bounds into live, exportable
measurements:

* :mod:`repro.obs.metrics` — thread-safe counters, gauges and
  fixed-bucket histograms in a :class:`MetricsRegistry`;
* :mod:`repro.obs.tracing` — nested spans with monotonic timing and a
  ring-buffer collector;
* :mod:`repro.obs.export` — JSONL traces and Prometheus-text metrics;
* :mod:`repro.obs.instrument` — the zero-overhead-when-disabled hooks
  embedded in the clocks, the rendezvous runtime, the decomposition
  algorithms and the causal monitor;
* :mod:`repro.obs.flightrec` — the causal flight recorder: a bounded
  ring of runtime events with post-mortem wait-for and reconstruction
  views;
* :mod:`repro.obs.timeline` — Perfetto/Chrome trace-event export of a
  flight record (tracks, slices, rendezvous flow arrows);
* :mod:`repro.obs.critpath` — critical path, per-event slack and
  latency attribution over the stamped message poset;
* :mod:`repro.obs.audit` — the sampling live audit of Theorem 4 and
  the Theorem 5/8 size bounds;
* :mod:`repro.obs.report` — the bench-trajectory report and regression
  gate over the committed ``BENCH_*.json`` snapshots;
* :mod:`repro.obs.live` — the live telemetry plane: node-side metric
  pushes, coordinator-side streaming aggregation with straggler /
  stall / deadlock-suspicion detection, the ``repro obs top``
  dashboard, and the opt-in ``/metrics`` HTTP endpoint.

Quickstart::

    from repro.obs import instrument
    from repro.obs.export import render_prometheus, write_trace_jsonl

    with instrument.enabled_session() as obs:
        ...  # run clocks / the threaded runtime
        print(render_prometheus(obs.registry))
        write_trace_jsonl(instrument.get_tracer().finished(), "trace.jsonl")

Importing this package never enables anything: hooks stay no-ops until
:func:`repro.obs.instrument.enable` runs (``repro obs`` on the command
line does this for one run).
"""

from repro.obs.audit import Auditor, AuditViolation, audit_session
from repro.obs.export import (
    metrics_to_json,
    read_trace_jsonl,
    render_prometheus,
    spans_to_jsonl,
    write_metrics,
    write_trace_jsonl,
)
from repro.obs.critpath import (
    analyze_flight_record,
    longest_weighted_chain,
)
from repro.obs.flightrec import (
    FlightEvent,
    FlightRecorder,
    recording_session,
    reconstruct_computation,
    truncation_summary,
    wait_for_summary,
)
from repro.obs.live import (
    HealthEvent,
    LiveAggregator,
    MetricsEndpoint,
    NodeTelemetry,
    TelemetryConfig,
    render_top,
)
from repro.obs.instrument import (
    Instrumented,
    ObsMetrics,
    disable,
    enable,
    enabled_session,
    get_registry,
    get_tracer,
    is_enabled,
    piggyback_size_bytes,
    span,
    varint_size,
)
from repro.obs.metrics import (
    BYTE_BUCKETS,
    DURATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    QuantileSketch,
)
from repro.obs.timeline import build_timeline, write_timeline
from repro.obs.report import (
    BenchReport,
    BenchReportError,
    compare_reports,
    load_bench_dir,
)
from repro.obs.tracing import NULL_SPAN, Span, Tracer

__all__ = [
    "AuditViolation",
    "Auditor",
    "BYTE_BUCKETS",
    "BenchReport",
    "BenchReportError",
    "Counter",
    "DURATION_BUCKETS",
    "FlightEvent",
    "FlightRecorder",
    "Gauge",
    "HealthEvent",
    "Histogram",
    "Instrumented",
    "LiveAggregator",
    "MetricError",
    "MetricsEndpoint",
    "MetricsRegistry",
    "NULL_SPAN",
    "NodeTelemetry",
    "ObsMetrics",
    "QuantileSketch",
    "Span",
    "TelemetryConfig",
    "Tracer",
    "analyze_flight_record",
    "audit_session",
    "build_timeline",
    "compare_reports",
    "disable",
    "enable",
    "enabled_session",
    "get_registry",
    "get_tracer",
    "is_enabled",
    "load_bench_dir",
    "longest_weighted_chain",
    "metrics_to_json",
    "piggyback_size_bytes",
    "read_trace_jsonl",
    "recording_session",
    "reconstruct_computation",
    "render_prometheus",
    "render_top",
    "span",
    "spans_to_jsonl",
    "truncation_summary",
    "varint_size",
    "wait_for_summary",
    "write_metrics",
    "write_timeline",
    "write_trace_jsonl",
]
