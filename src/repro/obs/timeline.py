"""Perfetto/Chrome trace-event export of a flight record.

A flight record is already a causal timeline — every blocking interval,
rendezvous commit and internal event carries a monotonic time and a
process — but JSONL is for machines.  This module converts a record
into the Chrome *trace-event* JSON format, which loads directly in
`ui.perfetto.dev <https://ui.perfetto.dev>`_ or ``chrome://tracing``:

* one track (thread) per process, named and sorted deterministically;
* a complete slice (``ph="X"``) per send/receive operation, with the
  rendezvous-*blocked* interval nested inside it as a child slice;
* instants (``ph="i"``) for internal events, rendezvous commits,
  crashes, script lifecycle markers and audit violations;
* a *flow arrow* (``ph="s"`` → ``ph="f"``) per matched send↔receive
  pair — the paper's edge-clock causality drawn as an arrow from the
  sender's slice to the receiver's — keyed by the rendezvous commit
  order, so ids are stable across exports.

The export is **deterministic**: the same flight record produces
byte-identical JSON (sorted tracks, stable flow ids, canonical key
order), which ``tests/obs/test_timeline.py`` pins down.

Timestamps are emitted in microseconds relative to the earliest event
in the record (the trace-event ``ts`` unit), rounded to nanosecond
resolution so float formatting cannot wobble across platforms.
"""

from __future__ import annotations

import json
from typing import (
    IO,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.obs import flightrec
from repro.obs.flightrec import FlightEvent, FlightRecorder

PathOrFile = Union[str, IO[str]]

#: ``pid`` used for every track — the whole run is one "process" in
#: trace-viewer terms; repro processes map to threads (tracks).
TRACE_PID = 1

_PH_RANK = {"M": 0, "X": 1, "s": 2, "f": 3, "i": 4}


def _events(
    record: Union[FlightRecorder, Iterable[FlightEvent]],
) -> List[FlightEvent]:
    if isinstance(record, FlightRecorder):
        return record.events()
    return list(record)


def _ts(t: float, t0: float) -> float:
    """Microseconds since ``t0``, at fixed nanosecond resolution."""
    return round((t - t0) * 1e6, 3)


class _OpenOp:
    """A send/receive operation being assembled from its events."""

    __slots__ = ("op", "start_t", "block_t", "peer")

    def __init__(self, op: str, start_t: float, peer: Any):
        self.op = op
        self.start_t = start_t  # slice start (offer time for sends)
        self.block_t = start_t  # blocked-child start
        self.peer = peer


def build_timeline(
    record: Union[FlightRecorder, Iterable[FlightEvent]],
    computation=None,
    title: str = "repro synchronous run",
) -> Dict[str, Any]:
    """Convert a flight record into a Chrome trace-event document.

    ``computation`` is an optional stamped
    :class:`~repro.sim.computation.SyncComputation` aligned with the
    record's commit order (e.g. from
    :func:`repro.obs.flightrec.reconstruct_computation`); when given,
    rendezvous instants and flow arrows carry the paper-style message
    names (``m1``, ``m2``, ...) in their ``args``.

    Returns a JSON-serializable dict with ``traceEvents`` plus
    metadata; serialize with :func:`timeline_json` for the canonical
    byte-stable form.
    """
    events = _events(record)
    trace: List[Dict[str, Any]] = []
    processes = sorted(
        {str(e.process) for e in events}
        | {str(e.peer) for e in events if e.peer is not None}
    )
    tids = {name: i + 1 for i, name in enumerate(processes)}
    for name in processes:
        trace.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": TRACE_PID,
                "tid": tids[name],
                "args": {"name": name},
            }
        )
        trace.append(
            {
                "ph": "M",
                "name": "thread_sort_index",
                "pid": TRACE_PID,
                "tid": tids[name],
                "args": {"sort_index": tids[name]},
            }
        )
    if not events:
        return {
            "traceEvents": trace,
            "displayTimeUnit": "ms",
            "otherData": {"title": title, "events": 0},
        }

    t0 = min(e.t for e in events)

    def message_name(commit_order: int) -> Optional[str]:
        if computation is None:
            return None
        messages = computation.messages
        if 0 <= commit_order < len(messages):
            return messages[commit_order].name
        return None

    def base(event: FlightEvent, t: Optional[float] = None):
        return {
            "pid": TRACE_PID,
            "tid": tids[str(event.process)],
            "ts": _ts(event.t if t is None else t, t0),
        }

    # Per-(sender, receiver) FIFO of pending offers → flow matching.
    pending_offers: Dict[Tuple[str, str], List[FlightEvent]] = {}
    # Per-process operation being assembled from block_start/.._end.
    open_ops: Dict[str, _OpenOp] = {}
    # Per-process start ts of the last *closed* receive slice, so the
    # flow-finish anchor lands inside that slice (the rendezvous
    # instant itself is recorded just after the slice ends).
    last_receive_start: Dict[str, float] = {}
    instant_names = {
        flightrec.INTERNAL: "internal",
        flightrec.CRASH: "crash",
        flightrec.SCRIPT_START: "script_start",
        flightrec.SCRIPT_END: "script_end",
        flightrec.SCRIPT_ERROR: "script_error",
        flightrec.DEADLOCK: "deadlock",
        flightrec.AUDIT_VIOLATION: "audit_violation",
    }

    def close_op(event: FlightEvent, op: _OpenOp) -> None:
        """Emit the op slice + nested blocked slice for one block_end."""
        status = event.detail.get("status", "?")
        peer = event.peer if event.peer is not None else op.peer
        peer_label = "any" if peer is None else str(peer)
        if op.op == "send":
            name = f"send -> {peer_label}"
        else:
            name = f"receive <- {peer_label}"
        start_ts = _ts(op.start_t, t0)
        end_ts = _ts(event.t, t0)
        slice_event = dict(base(event, op.start_t))
        slice_event.update(
            {
                "ph": "X",
                "cat": op.op,
                "name": name,
                "dur": round(end_ts - start_ts, 3),
                "args": {
                    "status": status,
                    "peer": peer_label,
                    "blocked_seconds": event.detail.get("seconds"),
                },
            }
        )
        trace.append(slice_event)
        if op.op == "receive":
            last_receive_start[str(event.process)] = start_ts
        block_ts = _ts(op.block_t, t0)
        if block_ts > start_ts:
            child = dict(base(event, op.block_t))
            child.update(
                {
                    "ph": "X",
                    "cat": "blocked",
                    "name": "blocked",
                    "dur": round(end_ts - block_ts, 3),
                    "args": {"status": status},
                }
            )
            trace.append(child)

    for event in events:
        kind = event.kind
        process = str(event.process)
        if kind == flightrec.SEND_OFFER:
            key = (process, str(event.peer))
            pending_offers.setdefault(key, []).append(event)
            open_ops[process] = _OpenOp("send", event.t, event.peer)
        elif kind == flightrec.BLOCK_START:
            op = event.detail.get("op", "?")
            existing = open_ops.get(process)
            if op == "send" and existing is not None:
                # Offer already opened the op; this starts the blocked
                # child interval.
                existing.block_t = event.t
            else:
                open_ops[process] = _OpenOp(op, event.t, event.peer)
        elif kind == flightrec.BLOCK_END:
            op = open_ops.pop(process, None)
            if op is None:
                # The start was evicted: synthesize the interval from
                # the recorded duration so the slice still shows up.
                seconds = event.detail.get("seconds") or 0.0
                op = _OpenOp(
                    event.detail.get("op", "?"),
                    event.t - seconds,
                    event.peer,
                )
                op.start_t = max(op.start_t, t0)
                op.block_t = op.start_t
            close_op(event, op)
        elif kind == flightrec.RENDEZVOUS:
            commit_order = event.detail.get("commit_order", -1)
            sender = str(event.peer)
            key = (sender, process)
            offers = pending_offers.get(key)
            name = message_name(commit_order)
            label = name if name is not None else f"m{commit_order + 1}"
            instant = dict(base(event))
            instant.update(
                {
                    "ph": "i",
                    "s": "t",
                    "cat": "rendezvous",
                    "name": f"rendezvous {label}",
                    "args": {
                        "commit_order": commit_order,
                        "sender": sender,
                        "receiver": process,
                        "payload": event.detail.get("payload"),
                    },
                }
            )
            if name is not None:
                instant["args"]["message"] = name
            trace.append(instant)
            if offers:
                offer = offers.pop(0)
                flow_args: Dict[str, Any] = {
                    "commit_order": commit_order
                }
                if name is not None:
                    flow_args["message"] = name
                trace.append(
                    {
                        "ph": "s",
                        "cat": "rendezvous",
                        "name": f"rendezvous {label}",
                        "id": commit_order,
                        "pid": TRACE_PID,
                        "tid": tids[sender],
                        "ts": _ts(offer.t, t0),
                        "args": flow_args,
                    }
                )
                finish_ts = last_receive_start.get(
                    process, _ts(event.t, t0)
                )
                trace.append(
                    {
                        "ph": "f",
                        "bp": "e",
                        "cat": "rendezvous",
                        "name": f"rendezvous {label}",
                        "id": commit_order,
                        "pid": TRACE_PID,
                        "tid": tids[process],
                        "ts": finish_ts,
                        "args": flow_args,
                    }
                )
        elif kind in instant_names:
            instant = dict(base(event))
            args = {
                key: value
                for key, value in sorted(event.detail.items())
                if isinstance(value, (str, int, float, bool))
            }
            label = event.detail.get("label")
            instant.update(
                {
                    "ph": "i",
                    "s": "t",
                    "cat": instant_names[kind],
                    "name": (
                        str(label)
                        if kind == flightrec.INTERNAL
                        and label is not None
                        else instant_names[kind]
                    ),
                    "args": args,
                }
            )
            trace.append(instant)

    # Any operation still open when the record ends: show it as a
    # slice running to the last recorded instant, flagged "open".
    t_end = max(e.t for e in events)
    for process in sorted(open_ops):
        op = open_ops[process]
        start_ts = _ts(op.start_t, t0)
        end_ts = _ts(t_end, t0)
        peer_label = "any" if op.peer is None else str(op.peer)
        arrow = "->" if op.op == "send" else "<-"
        trace.append(
            {
                "ph": "X",
                "cat": op.op,
                "name": f"{op.op} {arrow} {peer_label}",
                "pid": TRACE_PID,
                "tid": tids[process],
                "ts": start_ts,
                "dur": round(end_ts - start_ts, 3),
                "args": {"status": "open", "peer": peer_label},
            }
        )

    trace.sort(
        key=lambda e: (
            _PH_RANK.get(e["ph"], 9),
            e.get("ts", 0.0),
            e["tid"],
            e.get("name", ""),
            e.get("id", -1),
        )
    )
    return {
        "traceEvents": trace,
        "displayTimeUnit": "ms",
        "otherData": {"title": title, "events": len(events)},
    }


def timeline_json(
    record: Union[FlightRecorder, Iterable[FlightEvent]],
    computation=None,
    title: str = "repro synchronous run",
) -> str:
    """The canonical byte-stable serialization of the timeline."""
    document = build_timeline(record, computation, title)
    return json.dumps(
        document, sort_keys=True, separators=(",", ":")
    )


def write_timeline(
    record: Union[FlightRecorder, Iterable[FlightEvent]],
    target: PathOrFile,
    computation=None,
    title: str = "repro synchronous run",
) -> int:
    """Write the trace JSON to ``target``; returns trace-event count."""
    document = build_timeline(record, computation, title)
    text = json.dumps(document, sort_keys=True, separators=(",", ":"))
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        target.write(text)
    return len(document["traceEvents"])


def flow_pairs(
    document: Dict[str, Any],
) -> List[Tuple[Dict[str, Any], Dict[str, Any]]]:
    """``(flow_start, flow_finish)`` pairs of a built timeline.

    A well-formed export pairs every ``ph="s"`` with exactly one
    ``ph="f"`` sharing its ``id`` — the property test in
    ``tests/obs/test_timeline.py`` checks each pair connects a send
    slice to its matched receive slice.
    """
    starts: Dict[Any, Dict[str, Any]] = {}
    finishes: Dict[Any, Dict[str, Any]] = {}
    for event in document["traceEvents"]:
        if event.get("ph") == "s":
            starts[event["id"]] = event
        elif event.get("ph") == "f":
            finishes[event["id"]] = event
    return [
        (starts[flow_id], finishes[flow_id])
        for flow_id in sorted(starts)
        if flow_id in finishes
    ]
