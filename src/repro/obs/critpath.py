"""Critical-path and slack analysis over the stamped message poset.

End-to-end latency of a synchronous run is bounded by its *critical
path*: the longest weighted chain of the message poset ``(M, ↦)``,
where each message's weight is the wall-clock time it contributed
beyond its latest predecessor.  Everything off that chain has *slack* —
it could have run slower without delaying the run — so the chain is
exactly where optimization effort (or a synchronizer redesign) pays.

The chain computation runs on the bitset kernel of
:class:`repro.core.poset.Poset` (cover rows as integer bitmasks), the
same machinery the width/ideal-lattice kernels use, so it stays
O(messages · words) instead of materializing pair lists.

Weights come from the flight recorder's rendezvous commit times:

    ``w(m) = commit_t(m) − max(commit_t(p) for p ↦-below m)``

with the record's earliest event standing in for "start of run" at the
minimal messages.  Because commit order is consistent with ``↦`` (the
transport commits under one lock), weights are non-negative and the
critical-path length telescopes to exactly ``max commit_t − t0`` — the
run's end-to-end latency — which ``tests/obs/test_critpath.py``
re-derives independently.

The per-run attribution splits that latency two ways:

* per process — blocked (inside a rendezvous wait) vs running time;
* per edge group — each critical-path message charges its weight to
  its channel's group ``e(m)``, the paper's vector component, so the
  table names which component of the decomposition carries the run.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.obs import flightrec
from repro.obs.flightrec import FlightEvent, FlightRecorder

# NOTE: repro.core / repro.order / repro.sim are imported inside the
# functions that need them.  The instrumented core modules import
# repro.obs at load time, so a module-level import here would close an
# import cycle (core.vector -> obs -> critpath -> order -> core).


# ----------------------------------------------------------------------
# Generic longest weighted chain on the bitset kernel
# ----------------------------------------------------------------------
class ChainResult:
    """The longest weighted chain of a poset plus per-element slack."""

    __slots__ = ("total", "path", "down", "up", "through", "slack")

    def __init__(
        self,
        total: float,
        path: List[Any],
        down: Dict[Any, float],
        up: Dict[Any, float],
        through: Dict[Any, float],
        slack: Dict[Any, float],
    ):
        self.total = total
        self.path = path
        self.down = down  # heaviest chain ending at the element
        self.up = up  # heaviest chain strictly above the element
        self.through = through  # heaviest chain passing through
        self.slack = slack  # total - through (0 on the path)


def longest_weighted_chain(
    poset, weights: Dict[Any, float]
) -> ChainResult:
    """The heaviest chain of ``poset`` under per-element ``weights``.

    Weights must be non-negative.  Ties break deterministically toward
    the earliest-inserted element, so the returned path is stable for
    a fixed poset.  Runs one DP sweep over the cover rows (bitmask
    adjacency) in topological order and its reverse.
    """
    from repro.core.poset import _popcount, iter_bits

    elements = poset.elements
    n = len(elements)
    if n == 0:
        return ChainResult(0.0, [], {}, {}, {}, {})
    w = [float(weights[element]) for element in elements]
    if any(value < 0 for value in w):
        raise ValueError("chain weights must be non-negative")
    below = poset.below_bit_rows()
    covers = poset.cover_bit_rows()  # bit j of row i: i covered by j
    # Insertion order is topological for message posets; sorting by
    # predecessor count keeps the sweep correct for arbitrary posets.
    order = sorted(range(n), key=lambda i: (_popcount(below[i]), i))
    # Transposed covers: cover *predecessors* of each element.
    pred_rows = [0] * n
    for i in range(n):
        for j in iter_bits(covers[i]):
            pred_rows[j] |= 1 << i
    down = [0.0] * n
    best_pred = [-1] * n
    for i in order:
        best = 0.0
        pred = -1
        for j in iter_bits(pred_rows[i]):
            if down[j] > best or (down[j] == best and pred == -1):
                best = down[j]
                pred = j
        down[i] = best + w[i]
        best_pred[i] = pred
    up = [0.0] * n
    for i in reversed(order):
        best = 0.0
        for j in iter_bits(covers[i]):
            candidate = up[j] + w[j]
            if candidate > best:
                best = candidate
        up[i] = best
    total = 0.0
    tail = 0
    for i in range(n):
        if down[i] > total:
            total = down[i]
            tail = i
    path_indices: List[int] = []
    node = tail if n else -1
    while node != -1:
        path_indices.append(node)
        node = best_pred[node]
    path_indices.reverse()
    through = [down[i] + up[i] for i in range(n)]
    return ChainResult(
        total=total,
        path=[elements[i] for i in path_indices],
        down={elements[i]: down[i] for i in range(n)},
        up={elements[i]: up[i] for i in range(n)},
        through={elements[i]: through[i] for i in range(n)},
        slack={elements[i]: total - through[i] for i in range(n)},
    )


# ----------------------------------------------------------------------
# Flight-record analysis
# ----------------------------------------------------------------------
class CriticalPathResult:
    """Critical path + latency attribution for one recorded run."""

    def __init__(
        self,
        computation,
        poset,
        chain: ChainResult,
        commit_times: Dict[Any, float],
        weights: Dict[Any, float],
        t0: float,
        blocked_seconds: Dict[Any, Dict[str, float]],
        process_blocked: Dict[Any, float],
        process_span: Dict[Any, float],
        group_attribution: List[Tuple[str, float, int]],
        lost_events: int,
    ):
        self.computation = computation
        self.poset = poset
        self.chain = chain
        self.commit_times = commit_times
        self.weights = weights
        self.t0 = t0
        #: per message: ``{"send": s, "receive": s}`` blocked seconds
        self.blocked_seconds = blocked_seconds
        self.process_blocked = process_blocked
        self.process_span = process_span
        #: ``(group_label, attributed_seconds, path_messages)`` rows
        self.group_attribution = group_attribution
        self.lost_events = lost_events

    @property
    def total(self) -> float:
        """Critical-path length = end-to-end latency in seconds."""
        return self.chain.total

    def top_bottlenecks(self, k: int = 5):
        """The ``k`` critical-path messages with the largest weights."""
        ranked = sorted(
            self.chain.path,
            key=lambda m: (-self.weights[m], m.index),
        )
        return ranked[:k]


def _topology_from_events(events: Sequence[FlightEvent]):
    """Infer the communication topology a record actually used."""
    from repro.graphs.graph import UndirectedGraph

    graph = UndirectedGraph()
    for event in events:
        graph.add_vertex(event.process)
        if event.peer is not None:
            graph.add_vertex(event.peer)
    for event in events:
        if event.kind == flightrec.RENDEZVOUS:
            graph.add_edge(event.peer, event.process)
    return graph


def analyze_flight_record(
    record: Union[FlightRecorder, Iterable[FlightEvent]],
    topology=None,
    decomposition=None,
) -> CriticalPathResult:
    """Critical path, slack and latency attribution of a flight record.

    ``topology`` defaults to the graph the record itself exercised;
    pass the real one to keep unused channels visible.  With a
    ``decomposition`` the per-edge-group attribution uses the paper's
    ``e(m)`` component labels; otherwise messages group by channel.

    Truncated records (ring eviction) analyze the surviving suffix and
    report the loss via :attr:`CriticalPathResult.lost_events` — the
    caller decides whether a partial critical path is useful.
    """
    from repro.core.poset import iter_bits
    from repro.order.message_order import message_poset

    events = (
        record.events()
        if isinstance(record, FlightRecorder)
        else list(record)
    )
    if not events:
        raise ValueError("empty flight record: nothing to analyze")
    if topology is None:
        topology = _topology_from_events(events)
    lost = flightrec.truncation_summary(events).lost_events
    computation = flightrec.reconstruct_computation(
        events, topology, allow_partial_prefix=True
    )
    commits = sorted(
        (e for e in events if e.kind == flightrec.RENDEZVOUS),
        key=lambda e: e.detail["commit_order"],
    )
    if not commits:
        raise ValueError(
            "flight record contains no committed rendezvous"
        )
    poset = message_poset(computation)
    messages = computation.messages  # aligned with sorted commits
    commit_times = {
        message: commit.t
        for message, commit in zip(messages, commits)
    }
    t0 = min(event.t for event in events)
    below = poset.below_bit_rows()
    weights: Dict[Any, float] = {}
    for i, message in enumerate(messages):
        latest = t0
        for j in iter_bits(below[i]):
            latest = max(latest, commit_times[messages[j]])
        weights[message] = max(0.0, commit_times[message] - latest)
    chain = longest_weighted_chain(poset, weights)

    blocked = _blocked_seconds_per_message(events, messages, commits)
    process_blocked: Dict[Any, float] = {}
    first_seen: Dict[Any, float] = {}
    last_seen: Dict[Any, float] = {}
    for event in events:
        process = event.process
        first_seen.setdefault(process, event.t)
        last_seen[process] = event.t
        if (
            event.kind == flightrec.BLOCK_END
            and event.detail.get("seconds") is not None
        ):
            process_blocked[process] = process_blocked.get(
                process, 0.0
            ) + float(event.detail["seconds"])
    process_span = {
        process: last_seen[process] - first_seen[process]
        for process in first_seen
    }

    group_totals: Dict[str, Tuple[float, int]] = {}
    for message in chain.path:
        if decomposition is not None:
            index = decomposition.group_index_of(
                message.sender, message.receiver
            )
            label = f"group {index}"
        else:
            a, b = sorted(
                (str(message.sender), str(message.receiver))
            )
            label = f"{a}--{b}"
        seconds, count = group_totals.get(label, (0.0, 0))
        group_totals[label] = (
            seconds + weights[message],
            count + 1,
        )
    group_attribution = sorted(
        (
            (label, seconds, count)
            for label, (seconds, count) in group_totals.items()
        ),
        key=lambda row: (-row[1], row[0]),
    )
    return CriticalPathResult(
        computation=computation,
        poset=poset,
        chain=chain,
        commit_times=commit_times,
        weights=weights,
        t0=t0,
        blocked_seconds=blocked,
        process_blocked=process_blocked,
        process_span=process_span,
        group_attribution=group_attribution,
        lost_events=lost,
    )


def _blocked_seconds_per_message(
    events: Sequence[FlightEvent],
    messages: Sequence[Any],
    commits: Sequence[FlightEvent],
) -> Dict[Any, Dict[str, float]]:
    """Match matched-block intervals to the commits they belong to.

    The receiver's ``block_end`` precedes its rendezvous commit in ring
    order; the sender's follows it, FIFO per channel — both mirrors of
    how the transport interleaves its records.
    """
    message_of = {
        id(commit): message
        for commit, message in zip(commits, messages)
    }
    blocked: Dict[Any, Dict[str, float]] = {
        message: {} for message in messages
    }
    last_receive_end: Dict[Any, FlightEvent] = {}
    pending_sender: Dict[Tuple[Any, Any], List[Any]] = {}
    for event in events:
        if event.kind == flightrec.BLOCK_END:
            if event.detail.get("status") != "matched":
                continue
            op = event.detail.get("op")
            if op == "receive":
                last_receive_end[event.process] = event
            elif op == "send":
                queue = pending_sender.get(
                    (event.process, event.peer)
                )
                if queue:
                    message = queue.pop(0)
                    blocked[message]["send"] = float(
                        event.detail.get("seconds") or 0.0
                    )
        elif event.kind == flightrec.RENDEZVOUS:
            message = message_of.get(id(event))
            if message is None:
                continue
            end = last_receive_end.pop(event.process, None)
            if end is not None:
                blocked[message]["receive"] = float(
                    end.detail.get("seconds") or 0.0
                )
            pending_sender.setdefault(
                (event.peer, event.process), []
            ).append(message)
    return blocked


# ----------------------------------------------------------------------
# Renderers
# ----------------------------------------------------------------------
def _fmt_s(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}ms"


def render_text(
    result: CriticalPathResult, top_k: int = 5
) -> str:
    """Plain-text report naming the top-k bottleneck rendezvous."""
    return _render(result, top_k, markdown=False)


def render_markdown(
    result: CriticalPathResult, top_k: int = 5
) -> str:
    """The same report with markdown tables."""
    return _render(result, top_k, markdown=True)


def _render(
    result: CriticalPathResult, top_k: int, markdown: bool
) -> str:
    lines: List[str] = []
    heading = "## " if markdown else ""
    path_names = " -> ".join(m.name for m in result.chain.path)
    lines.append(f"{heading}Critical path")
    lines.append("")
    lines.append(
        f"end-to-end latency: {_fmt_s(result.total)} over "
        f"{len(result.computation)} messages; critical chain "
        f"({len(result.chain.path)} messages): {path_names}"
    )
    if result.lost_events:
        lines.append(
            f"WARNING: flight record truncated (~{result.lost_events} "
            "events lost to ring eviction); this analyzes the "
            "surviving suffix only"
        )
    lines.append("")
    lines.append(f"{heading}Top bottleneck rendezvous")
    lines.append("")
    header = [
        "message", "channel", "self-time", "blocked(recv)",
        "blocked(send)", "slack",
    ]
    rows: List[List[str]] = []
    for message in result.top_bottlenecks(top_k):
        waits = result.blocked_seconds.get(message, {})
        rows.append(
            [
                message.name,
                f"{message.sender}->{message.receiver}",
                _fmt_s(result.weights[message]),
                _fmt_s(waits.get("receive", 0.0)),
                _fmt_s(waits.get("send", 0.0)),
                _fmt_s(result.chain.slack[message]),
            ]
        )
    lines.extend(_table(header, rows, markdown))
    lines.append("")
    lines.append(f"{heading}Latency by edge group (critical path)")
    lines.append("")
    header = ["edge group", "attributed", "share", "messages"]
    rows = []
    for label, seconds, count in result.group_attribution:
        share = seconds / result.total if result.total else 0.0
        rows.append(
            [label, _fmt_s(seconds), f"{share:6.1%}", str(count)]
        )
    lines.extend(_table(header, rows, markdown))
    lines.append("")
    lines.append(f"{heading}Blocked vs running per process")
    lines.append("")
    header = ["process", "span", "blocked", "blocked-share"]
    rows = []
    for process in sorted(result.process_span, key=str):
        span = result.process_span[process]
        waited = result.process_blocked.get(process, 0.0)
        share = waited / span if span else 0.0
        rows.append(
            [str(process), _fmt_s(span), _fmt_s(waited),
             f"{share:6.1%}"]
        )
    lines.extend(_table(header, rows, markdown))
    return "\n".join(lines) + "\n"


def _table(
    header: List[str], rows: List[List[str]], markdown: bool
) -> List[str]:
    if markdown:
        out = ["| " + " | ".join(header) + " |"]
        out.append("|" + "|".join("---" for _ in header) + "|")
        for row in rows:
            out.append("| " + " | ".join(row) + " |")
        return out
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows))
        if rows
        else len(header[i])
        for i in range(len(header))
    ]
    out = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip()
    ]
    out.append("  ".join("-" * w for w in widths))
    for row in rows:
        out.append(
            "  ".join(
                c.ljust(w) for c, w in zip(row, widths)
            ).rstrip()
        )
    return out
