"""Export formats: JSONL span traces and Prometheus-text metrics.

Two consumers, two formats:

* traces go out as JSON Lines — one span per line, streamable, and
  round-trippable back into :class:`~repro.obs.tracing.Span` objects
  for offline analysis next to :mod:`repro.analysis`;
* metrics render in the Prometheus text exposition format (version
  0.0.4), so a scrape endpoint or a file drop integrates with standard
  dashboards; a JSON snapshot is available for the repo's own tooling.
"""

from __future__ import annotations

import json
import math
import re
from typing import IO, Iterable, List, Union

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QuantileSketch,
)
from repro.obs.tracing import Span

PathOrFile = Union[str, IO[str]]


# ----------------------------------------------------------------------
# JSONL traces
# ----------------------------------------------------------------------
def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """Render spans as JSON Lines (one compact object per line)."""
    return "".join(
        json.dumps(span.to_dict(), sort_keys=True) + "\n" for span in spans
    )


def write_trace_jsonl(spans: Iterable[Span], target: PathOrFile) -> int:
    """Write spans to ``target`` (path or file object); returns count."""
    spans = list(spans)
    text = spans_to_jsonl(spans)
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        target.write(text)
    return len(spans)


def read_trace_jsonl(source: PathOrFile) -> List[Span]:
    """Parse a JSONL trace back into :class:`Span` objects."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = source.read()
    spans: List[Span] = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------
def _format_value(value) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _escape_help(text: str) -> str:
    """HELP text escaping per the exposition format: ``\\`` and ``\\n``."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    """Label-value escaping: backslash, double quote, and newline."""
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


_INVALID_NAME_CHAR = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize_name(name: str) -> str:
    """Coerce a metric name into the exposition grammar.

    Prometheus metric names match ``[a-zA-Z_:][a-zA-Z0-9_:]*`` and are
    *not* escapable, so any out-of-grammar character (most dangerously
    a newline or a space, which would corrupt the whole exposition)
    maps to ``_``.
    """
    name = _INVALID_NAME_CHAR.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format 0.0.4."""
    lines: List[str] = []
    for metric in registry:
        name = _sanitize_name(metric.name)
        if metric.help:
            lines.append(f"# HELP {name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            lines.append(f"{name} {_format_value(metric.value)}")
        elif isinstance(metric, Histogram):
            for bound, count in metric.bucket_counts():
                edge = _escape_label_value(_format_value(bound))
                lines.append(f'{name}_bucket{{le="{edge}"}} {count}')
            lines.append(f"{name}_sum {_format_value(metric.sum)}")
            lines.append(f"{name}_count {metric.count}")
        elif isinstance(metric, QuantileSketch):
            for target, estimate in sorted(metric.quantiles().items()):
                label = _escape_label_value(_format_value(target))
                lines.append(
                    f'{name}{{quantile="{label}"}} '
                    f"{_format_value(estimate)}"
                )
            lines.append(f"{name}_sum {_format_value(metric.sum)}")
            lines.append(f"{name}_count {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_to_json(registry: MetricsRegistry, indent: int = 2) -> str:
    """The registry snapshot as pretty-printed JSON."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


def write_metrics(
    registry: MetricsRegistry,
    target: PathOrFile,
    fmt: str = "prometheus",
) -> None:
    """Write the registry to ``target`` as ``"prometheus"`` or ``"json"``."""
    if fmt == "prometheus":
        text = render_prometheus(registry)
    elif fmt == "json":
        text = metrics_to_json(registry) + "\n"
    else:
        raise ValueError(
            f"unknown metrics format {fmt!r}; "
            "expected 'prometheus' or 'json'"
        )
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        target.write(text)
