"""Sampling live audit of Theorem 4 and the size bounds.

The paper's central claim (Theorem 4) is that the online encoding
*characterizes* the synchronous order: ``m1 ↦ m2 ⟺ v(m1) < v(m2)``.
Until now that claim was verified only by offline tests; this module
checks it *while timestamps are being issued*.  At a configurable
sampling rate the auditor rebuilds the ground-truth ``↦`` with the
bitset poset kernel and cross-checks freshly issued timestamps against
it, in both directions, and asserts the size bounds the paper proves:

* Theorem 5 (online): the vector has one component per edge group and
  the decomposition size is at most ``N - 2`` (for ``N >= 3``);
* Theorem 8 (offline): the realizer width is at most
  ``floor(N_active / 2)``.

Violations are collected on the auditor, counted by the
``audit_violations_total`` / ``audit_pairs_checked_total`` metrics when
:mod:`repro.obs.instrument` is enabled, and attached to the flight
record when a :mod:`repro.obs.flightrec` recorder is installed — so a
bad pair lands in the same post-mortem artifact as the runtime events
that produced it.

Zero overhead when disabled, same ``None``-test discipline as
``instrument.metrics``: call sites load :data:`auditor` through the
module object and test against ``None``.  The audit never mutates
anything it checks, so timestamping output is byte-identical with the
audit on or off (pinned in ``tests/obs/test_audit.py``).
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.obs import flightrec as _flightrec
from repro.obs import instrument as _instrument


class AuditViolation:
    """One cross-check that contradicted the ground truth or a bound."""

    __slots__ = ("kind", "first", "second", "expected", "actual", "note")

    def __init__(
        self,
        kind: str,
        first: Any,
        second: Any = None,
        expected: Any = None,
        actual: Any = None,
        note: str = "",
    ):
        #: "order_mismatch" | "theorem5_bound" | "theorem8_bound"
        #: | "vector_size"
        self.kind = kind
        self.first = first
        self.second = second
        self.expected = expected
        self.actual = actual
        self.note = note

    def describe(self) -> str:
        if self.kind == "order_mismatch":
            return (
                f"order mismatch: {self.first!r} vs {self.second!r}: "
                f"ground truth says {self.expected!r}, vectors say "
                f"{self.actual!r} {self.note}"
            )
        return (
            f"{self.kind}: expected <= {self.expected!r}, got "
            f"{self.actual!r} {self.note}"
        ).rstrip()

    def __repr__(self) -> str:
        return f"AuditViolation({self.describe()})"


class Auditor:
    """Samples issued timestamps and cross-checks them against ``↦``.

    ``sample_rate`` is the probability a freshly issued timestamp gets
    audited; each audited timestamp is compared against up to
    ``max_pairs`` uniformly chosen partners.  ``seed`` makes a run
    reproducible; ``history_limit`` bounds the runtime log the
    incremental audit keeps (the suffix is self-contained: a chain
    between two retained messages only passes through messages between
    them in commit order, which are also retained).
    """

    def __init__(
        self,
        sample_rate: float = 0.05,
        max_pairs: int = 32,
        seed: int = 0,
        history_limit: int = 4096,
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        if max_pairs < 1:
            raise ValueError(
                f"max_pairs must be positive, got {max_pairs}"
            )
        if history_limit < 2:
            raise ValueError(
                f"history_limit must be at least 2, got {history_limit}"
            )
        self.sample_rate = sample_rate
        self.max_pairs = max_pairs
        self.history_limit = history_limit
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        #: Commit-ordered ``(sender, receiver, timestamp)`` suffix seen
        #: by the incremental runtime audit.
        self._runtime_log: List[Tuple[Any, Any, Any]] = []
        self.pairs_checked = 0
        self.bounds_checked = 0
        self.violations: List[AuditViolation] = []

    # ------------------------------------------------------------------
    # Shared accounting
    # ------------------------------------------------------------------
    def _count_pairs_locked(self, count: int) -> None:
        self.pairs_checked += count
        m = _instrument.metrics
        if m is not None:
            m.audit_pairs_checked.inc(count)

    def _record_violation_locked(
        self, violation: AuditViolation
    ) -> None:
        self.violations.append(violation)
        m = _instrument.metrics
        if m is not None:
            m.audit_violations.inc()
        fr = _flightrec.recorder
        if fr is not None:
            fr.record(
                _flightrec.AUDIT_VIOLATION,
                "audit",
                violation_kind=violation.kind,
                description=violation.describe(),
            )

    def _check_pair_locked(
        self,
        label1: Any,
        label2: Any,
        truth_less_12: bool,
        truth_less_21: bool,
        ts1,
        ts2,
    ) -> None:
        """Both directions of Theorem 4 for one pair."""
        self._count_pairs_locked(1)
        vec_less_12 = ts1 < ts2
        vec_less_21 = ts2 < ts1
        if truth_less_12 != vec_less_12 or truth_less_21 != vec_less_21:
            self._record_violation_locked(
                AuditViolation(
                    "order_mismatch",
                    first=label1,
                    second=label2,
                    expected=(truth_less_12, truth_less_21),
                    actual=(vec_less_12, vec_less_21),
                    note=f"v1={ts1!r} v2={ts2!r}",
                )
            )

    # ------------------------------------------------------------------
    # Incremental audit: the threaded rendezvous runtime
    # ------------------------------------------------------------------
    def on_runtime_message(
        self, sender: Any, receiver: Any, timestamp
    ) -> None:
        """Observe one committed rendezvous (called in commit order)."""
        with self._lock:
            self._runtime_log.append((sender, receiver, timestamp))
            if len(self._runtime_log) > self.history_limit:
                drop = len(self._runtime_log) - self.history_limit
                del self._runtime_log[:drop]
            if len(self._runtime_log) < 2:
                return
            if self._rng.random() >= self.sample_rate:
                return
            self._audit_runtime_tail_locked()

    def _audit_runtime_tail_locked(self) -> None:
        from repro.core.poset import Poset

        log = self._runtime_log
        n = len(log)
        # Ground truth over the retained suffix: m_i ▷ m_j when they
        # share a participant and i < j; the poset closes that to ↦.
        covers: List[Tuple[int, int]] = []
        last_seen: Dict[Any, int] = {}
        for index, (sender, receiver, _) in enumerate(log):
            for participant in (sender, receiver):
                previous = last_seen.get(participant)
                if previous is not None:
                    covers.append((previous, index))
                last_seen[participant] = index
        poset = Poset(range(n), covers)
        newest = n - 1
        candidates = list(range(newest))
        partners = (
            candidates
            if len(candidates) <= self.max_pairs
            else self._rng.sample(candidates, self.max_pairs)
        )
        ts_new = log[newest][2]
        for index in partners:
            self._check_pair_locked(
                f"runtime[{index}]",
                f"runtime[{newest}]",
                poset.less(index, newest),
                poset.less(newest, index),
                log[index][2],
                ts_new,
            )

    # ------------------------------------------------------------------
    # Batch audit: OnlineEdgeClock.timestamp_computation
    # ------------------------------------------------------------------
    def audit_batch(
        self,
        computation,
        timestamps: Mapping[Any, Any],
        decomposition=None,
    ) -> None:
        """Sampled Theorem 4 check of a batch assignment.

        ``timestamps`` maps each message of ``computation`` to its
        vector.  With a ``decomposition`` supplied the Theorem 5 size
        bound and the vector dimensionality are asserted too.
        """
        from repro.order.message_order import message_poset

        with self._lock:
            messages = computation.messages
            if decomposition is not None:
                self._check_theorem5_locked(
                    decomposition, messages, timestamps
                )
            if len(messages) < 2:
                return
            poset = None
            for position, message in enumerate(messages):
                if self._rng.random() >= self.sample_rate:
                    continue
                if poset is None:
                    poset = message_poset(computation)
                candidates = [
                    i for i in range(len(messages)) if i != position
                ]
                partners = (
                    candidates
                    if len(candidates) <= self.max_pairs
                    else self._rng.sample(candidates, self.max_pairs)
                )
                for index in partners:
                    other = messages[index]
                    self._check_pair_locked(
                        message.name,
                        other.name,
                        poset.less(message, other),
                        poset.less(other, message),
                        timestamps[message],
                        timestamps[other],
                    )

    def _check_theorem5_locked(
        self, decomposition, messages, timestamps
    ) -> None:
        self.bounds_checked += 1
        size = decomposition.size
        n = decomposition.graph.vertex_count()
        bound = max(1, n - 2)
        if size > bound:
            self._record_violation_locked(
                AuditViolation(
                    "theorem5_bound",
                    first="decomposition",
                    expected=bound,
                    actual=size,
                    note=f"(N={n})",
                )
            )
        if messages:
            width = len(timestamps[messages[0]])
            if width != size:
                self._record_violation_locked(
                    AuditViolation(
                        "vector_size",
                        first=messages[0].name,
                        expected=size,
                        actual=width,
                        note="(vector components != edge groups)",
                    )
                )

    # ------------------------------------------------------------------
    # Lossy-mode measurement: bounded-K false concurrency
    # ------------------------------------------------------------------
    def measure_false_concurrency(
        self,
        computation,
        timestamps,
        pair_budget: int = 20_000,
    ) -> Dict[str, float]:
        """Quantify how lossy a bounded-K assignment actually is.

        Bounded-K timestamps (``OnlineProcessClock(bound_k=K)`` with
        the ``bounded:K`` wire format) under-approximate history by
        construction, so this is a *measurement*, not a violation
        sweep: pairs where the ground-truth ``↦`` orders the messages
        but the vectors read concurrent are **false concurrency**; the
        reverse direction (vectors ordered, truth concurrent) is
        **false order** and should stay zero — saturation only loses
        information, it never invents it.

        ``timestamps`` is a mapping keyed by message or a sequence
        aligned with ``computation.messages``.  All ``n*(n-1)/2`` pairs
        are checked when that fits in ``pair_budget``; otherwise a
        reproducible uniform sample of ``pair_budget`` pairs.  Sets the
        ``bounded_false_concurrency_rate`` gauge when instrumentation
        is enabled and returns the counts.
        """
        from repro.order.message_order import message_poset

        messages = list(computation.messages)
        if isinstance(timestamps, Mapping):
            vectors = [timestamps[message] for message in messages]
        else:
            vectors = list(timestamps)
            if len(vectors) != len(messages):
                raise ValueError(
                    f"{len(vectors)} timestamps for "
                    f"{len(messages)} messages"
                )
        with self._lock:
            n = len(messages)
            poset = message_poset(computation) if n >= 2 else None
            total_pairs = n * (n - 1) // 2
            if total_pairs <= pair_budget:
                pairs = [
                    (i, j) for i in range(n) for j in range(i + 1, n)
                ]
            else:
                seen = set()
                while len(seen) < pair_budget:
                    i, j = self._rng.sample(range(n), 2)
                    seen.add((i, j) if i < j else (j, i))
                pairs = sorted(seen)
            ordered = false_concurrency = false_order = 0
            for i, j in pairs:
                self._count_pairs_locked(1)
                truth = poset.less(messages[i], messages[j]) or poset.less(
                    messages[j], messages[i]
                )
                vec = vectors[i] < vectors[j] or vectors[j] < vectors[i]
                if truth:
                    ordered += 1
                    if not vec:
                        false_concurrency += 1
                elif vec:
                    false_order += 1
            rate = false_concurrency / ordered if ordered else 0.0
            result = {
                "pairs_checked": float(len(pairs)),
                "ordered_pairs": float(ordered),
                "false_concurrency": float(false_concurrency),
                "false_concurrency_rate": rate,
                "false_order": float(false_order),
                "false_order_rate": (
                    false_order / len(pairs) if pairs else 0.0
                ),
            }
            m = _instrument.metrics
            if m is not None:
                m.bounded_false_concurrency_rate.set(rate)
            return result

    # ------------------------------------------------------------------
    # Offline audit: OfflineRealizerClock.timestamp_poset
    # ------------------------------------------------------------------
    def audit_offline(
        self,
        computation,
        poset,
        timestamps: Mapping[Any, Any],
        width: int,
    ) -> None:
        """Theorem 8 bound plus sampled pair checks for Figure 9.

        The caller already built the ground-truth ``poset``, so the
        cross-check reuses it instead of rebuilding.
        """
        with self._lock:
            active = computation.active_processes()
            if len(active) >= 2:
                self.bounds_checked += 1
                bound = len(active) // 2
                if width > bound:
                    self._record_violation_locked(
                        AuditViolation(
                            "theorem8_bound",
                            first="realizer",
                            expected=bound,
                            actual=width,
                            note=f"(N_active={len(active)})",
                        )
                    )
            elements = list(poset.elements)
            if len(elements) < 2:
                return
            for position, message in enumerate(elements):
                if self._rng.random() >= self.sample_rate:
                    continue
                candidates = [
                    i for i in range(len(elements)) if i != position
                ]
                partners = (
                    candidates
                    if len(candidates) <= self.max_pairs
                    else self._rng.sample(candidates, self.max_pairs)
                )
                for index in partners:
                    other = elements[index]
                    self._check_pair_locked(
                        getattr(message, "name", message),
                        getattr(other, "name", other),
                        poset.less(message, other),
                        poset.less(other, message),
                        timestamps[message],
                        timestamps[other],
                    )


# ----------------------------------------------------------------------
# Module-level hook (same discipline as ``instrument.metrics``)
# ----------------------------------------------------------------------
#: The active auditor, or ``None`` when the live audit is off.  Read
#: through the module object at call time; never ``from``-import.
auditor: Optional[Auditor] = None

_state_lock = threading.Lock()


def is_auditing() -> bool:
    """True when a live auditor is installed."""
    return auditor is not None


def install(aud: Optional[Auditor] = None, **kwargs: Any) -> Auditor:
    """Install ``aud`` (or ``Auditor(**kwargs)``) as the live auditor."""
    global auditor
    with _state_lock:
        if aud is None:
            aud = Auditor(**kwargs)
        auditor = aud
        return aud


def uninstall() -> None:
    """Remove the live auditor; hooks revert to no-ops."""
    global auditor
    with _state_lock:
        auditor = None


@contextmanager
def audit_session(
    aud: Optional[Auditor] = None, **kwargs: Any
) -> Iterator[Auditor]:
    """Scoped install/restore — tests and the CLI wrap runs in this."""
    global auditor
    previous = auditor
    active = install(aud, **kwargs)
    try:
        yield active
    finally:
        with _state_lock:
            auditor = previous
