"""Experiment batch — offline (Figure 9) pipeline, old vs. new kernel.

Runs the complete offline realizer pipeline — message-poset closure,
Dilworth chain partition, chain-forced realizer, rank vectors — on two
poset kernels:

* **reference** — the seed dict-of-sets implementation, preserved in
  :mod:`repro.core.poset_reference`: per-element ``set`` closure and
  hash-probing pair machinery;
* **bitset** — :class:`repro.core.poset.Poset`'s bitmask rows:
  word-parallel closure, mask-fed Hopcroft–Karp, cover-row realizer
  sweeps.

Workloads are the 1k-message client–server scalability run and a
5k-message run of the same shape.  Before any timing is recorded the
two kernels are pinned to byte-identical timestamps, identical widths,
and identical ``_obs`` metric snapshots.  Results land in
``BENCH_offline.json`` (``make bench-offline``); with
``BENCH_OFFLINE_SMOKE=1`` (the CI smoke step) everything runs one round
at reduced sizes and the committed snapshot is left untouched.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from benchmarks.conftest import emit, record_offline_perf
from repro.clocks.offline import OfflineRealizerClock
from repro.core.poset import Poset
from repro.core.poset_reference import ReferencePoset
from repro.graphs.generators import client_server_topology
from repro.obs import instrument
from repro.obs.metrics import MetricsRegistry
from repro.order.message_order import covering_pairs
from repro.sim.workload import random_computation

SMOKE = os.environ.get("BENCH_OFFLINE_SMOKE") == "1"

TOPOLOGY = client_server_topology(3, 27)  # N = 30, d = 3
SIZES = (500,) if SMOKE else (1_000, 5_000)
REPEATS = 1 if SMOKE else 3
REQUIRED_SPEEDUP = 3.0


def _workload(messages: int):
    return random_computation(TOPOLOGY, messages, random.Random(11))


def _reference_pipeline(computation):
    """The pre-PR pipeline: dict-of-sets closure + list-fed matcher."""
    clock = OfflineRealizerClock()
    poset = ReferencePoset(computation.messages, covering_pairs(computation))
    assignment = clock.timestamp_poset(computation, poset)
    return clock, assignment


def _bitset_pipeline(computation):
    """The shipped pipeline: bitmask closure + mask-fed matcher."""
    clock = OfflineRealizerClock()
    poset = Poset(computation.messages, covering_pairs(computation))
    assignment = clock.timestamp_poset(computation, poset)
    return clock, assignment


def _construction_seconds(kernel, computation) -> float:
    pairs = covering_pairs(computation)
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        kernel(computation.messages, pairs)
        best = min(best, time.perf_counter() - started)
    return best


def _pipeline_seconds(pipeline, computation) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        pipeline(computation)
        best = min(best, time.perf_counter() - started)
    return best


@pytest.mark.parametrize("messages", SIZES)
def test_offline_kernels_agree_exactly(report_header, messages):
    """Byte-identical timestamps, width, and ``_obs`` counters."""
    computation = _workload(messages)

    with instrument.enabled_session(MetricsRegistry()) as bundle:
        ref_clock, ref_assignment = _reference_pipeline(computation)
        ref_counters = bundle.registry.snapshot()
    with instrument.enabled_session(MetricsRegistry()) as bundle:
        new_clock, new_assignment = _bitset_pipeline(computation)
        new_counters = bundle.registry.snapshot()

    for message in computation.messages:
        assert (
            new_assignment.of(message).components
            == ref_assignment.of(message).components
        )
    assert new_clock.timestamp_size == ref_clock.timestamp_size
    assert new_clock.realizer == ref_clock.realizer
    assert new_counters == ref_counters

    report_header(
        f"Offline kernels: equivalence on the {messages}-message workload"
    )
    emit(
        f"{messages} messages (width {new_clock.timestamp_size}): "
        f"timestamps, realizer, and all {len(new_counters)} metric "
        "snapshots identical"
    )


@pytest.mark.parametrize("messages", SIZES)
def test_offline_speedup_snapshot(report_header, messages):
    """The headline numbers: construction, width, and full stamping."""
    computation = _workload(messages)
    instrument.disable()

    construct_ref = _construction_seconds(ReferencePoset, computation)
    construct_new = _construction_seconds(Poset, computation)

    ref_seconds = _pipeline_seconds(_reference_pipeline, computation)
    new_seconds = _pipeline_seconds(_bitset_pipeline, computation)
    speedup = ref_seconds / new_seconds

    clock, _ = _bitset_pipeline(computation)
    poset_width = clock.timestamp_size

    if not SMOKE:
        record_offline_perf(
            f"offline_{messages}",
            {
                "workload": "client-server:3x27",
                "messages": messages,
                "width": poset_width,
                "construction_reference_seconds": construct_ref,
                "construction_bitset_seconds": construct_new,
                "reference_seconds": ref_seconds,
                "bitset_seconds": new_seconds,
                "reference_messages_per_sec": messages / ref_seconds,
                "bitset_messages_per_sec": messages / new_seconds,
            },
        )

    report_header(
        f"Offline pipeline: old vs. new kernel, {messages} messages"
    )
    emit(
        f"poset construction: {construct_ref:.3f}s -> "
        f"{construct_new:.3f}s ({construct_ref / construct_new:.1f}x)"
    )
    emit(
        f"full stamping (width {poset_width}): {ref_seconds:.3f}s -> "
        f"{new_seconds:.3f}s"
    )
    emit(f"speedup: {speedup:.1f}x (required >= {REQUIRED_SPEEDUP}x)")
    assert speedup >= REQUIRED_SPEEDUP


@pytest.mark.parametrize("kernel", ["reference", "bitset"])
def test_offline_stamping_benchmark(benchmark, kernel):
    """pytest-benchmark timings for both kernels (``make bench``)."""
    messages = SIZES[0]
    computation = _workload(messages)
    instrument.disable()
    pipeline = (
        _reference_pipeline if kernel == "reference" else _bitset_pipeline
    )
    _, assignment = benchmark(pipeline, computation)
    assert len(assignment) == messages
