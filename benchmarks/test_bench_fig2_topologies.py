"""Experiment fig2 — the communication topologies of Figure 2.

(a) the fully-connected system; (b) the reconstructed 11-node system.
Prints their structural statistics and times the default decomposition
entry point on each.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.report import render_table
from repro.graphs.decomposition import decompose
from repro.graphs.generators import complete_topology, paper_fig2b_graph


def test_fig2a_complete_topology(benchmark, report_header):
    report_header("Figure 2(a): fully-connected topology")
    graph = complete_topology(5)
    decomposition = benchmark(decompose, graph)
    emit(
        render_table(
            ["N", "edges", "decomposition size", "paper bound N-2"],
            [[5, graph.edge_count(), decomposition.size, 3]],
        )
    )
    assert decomposition.size == 3


def test_fig2b_general_topology(benchmark, report_header):
    report_header("Figure 2(b): general 11-node topology (reconstruction)")
    graph = paper_fig2b_graph()
    decomposition = benchmark(decompose, graph)
    emit(
        render_table(
            ["vertices", "edges", "decomposition size"],
            [[graph.vertex_count(), graph.edge_count(), decomposition.size]],
        )
    )
    emit(decomposition.describe())
    assert decomposition.size == 5
