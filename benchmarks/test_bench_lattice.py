"""Experiment batch — ideal-lattice enumeration, old vs. new kernel.

Enumerates and counts the lattice of consistent global states on two
implementations:

* **reference** — the seed layered BFS preserved in
  :func:`repro.core.ideals.ideals_reference`: per-layer sets of
  frozensets, per-element closure tests, hash de-duplication;
* **kernel** — :mod:`repro.core.lattice_kernel`'s chain-indexed bitset
  walk: a minimum chain partition (width ≤ ⌊N/2⌋ by Theorem 8), ideals
  as int masks, O(width) mask operations per ideal.

Workloads are antichain-batch computations whose lattices are products
of chains — ``7^6 = 117,649`` states on the headline run and the
``2^16`` powerset of a pure antichain — well past the 50k-ideal scale
the acceptance gate names.  Before any timing is recorded the two
enumerators are pinned to identical ideal sets and counts.  Results
land in ``BENCH_lattice.json`` (``make bench-lattice``); with
``BENCH_LATTICE_SMOKE=1`` (the CI smoke step) everything runs at
reduced sizes and the committed snapshot is left untouched.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import emit, record_lattice_perf
from repro.core.ideals import all_ideals, ideals_reference
from repro.core.lattice_kernel import count_ideals, iterate_ideal_masks
from repro.graphs.generators import complete_topology
from repro.obs import instrument
from repro.order.message_order import message_poset
from repro.sim.workload import adversarial_antichain_computation

SMOKE = os.environ.get("BENCH_LATTICE_SMOKE") == "1"

#: ``(name, processes, batches, required_speedup)`` — an antichain
#: batch on a clique of ``P`` processes fires ``P // 2`` pairwise-
#: concurrent messages, so the lattice is a product of ``P // 2``
#: chains of ``batches`` links: ``(batches + 1) ** (P // 2)`` ideals.
#: The pure antichain is the reference BFS's cheapest shape (every
#: closure test is against an empty set), so its gate is lower; the
#: headline >= 20x acceptance gate rides the 117,649-ideal
#: product-of-chains run, where per-ideal closure work is real.
WORKLOADS = (
    [("chain-product:12x3", 12, 3, 2.0)]  # 4^6 = 4,096 ideals
    if SMOKE
    else [
        ("antichain:32", 32, 1, 8.0),  # 2^16 = 65,536 ideals
        ("chain-product:12x6", 12, 6, 20.0),  # 7^6 = 117,649 ideals
    ]
)
REPEATS = 1 if SMOKE else 3
LIMIT = 200_000


def _poset(processes: int, batches: int):
    computation = adversarial_antichain_computation(
        complete_topology(processes), batches
    )
    return message_poset(computation)


def _best_of(repeats, thunk) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        thunk()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.mark.parametrize("name,processes,batches,required", WORKLOADS)
def test_lattice_kernels_agree_exactly(
    report_header, name, processes, batches, required
):
    """Identical ideal sets and counts before any timing is recorded.

    Holding both enumerations as sets of frozensets is the expensive
    part, so the comparison runs on a reduced cousin of each workload
    (half the batches); the property suite covers random shapes.
    """
    poset = _poset(processes, batches if SMOKE else max(1, batches // 2))

    kernel_set = set(all_ideals(poset, limit=LIMIT))
    reference_set = set(ideals_reference(poset, limit=LIMIT))
    assert kernel_set == reference_set
    assert count_ideals(poset, limit=LIMIT) == len(reference_set)

    report_header(f"Lattice kernels: equivalence on {name}")
    emit(
        f"{len(poset)} elements: {len(reference_set)} ideals identical "
        "between the layered BFS and the chain-indexed kernel"
    )


@pytest.mark.parametrize("name,processes,batches,required", WORKLOADS)
def test_lattice_speedup_snapshot(
    report_header, name, processes, batches, required
):
    """The headline numbers: ideals/sec, counting vs. materializing."""
    poset = _poset(processes, batches)
    instrument.disable()

    total = count_ideals(poset, limit=LIMIT)
    assert total >= (4_000 if SMOKE else 50_000)

    reference_seconds = _best_of(
        REPEATS,
        lambda: sum(1 for _ in ideals_reference(poset, limit=LIMIT)),
    )
    kernel_seconds = _best_of(
        REPEATS,
        lambda: sum(1 for _ in iterate_ideal_masks(poset, limit=LIMIT)),
    )
    count_seconds = _best_of(
        REPEATS, lambda: count_ideals(poset, limit=LIMIT)
    )
    materialize_seconds = _best_of(
        REPEATS, lambda: sum(1 for _ in all_ideals(poset, limit=LIMIT))
    )

    speedup = reference_seconds / kernel_seconds

    if not SMOKE:
        record_lattice_perf(
            name,
            {
                "workload": name,
                "elements": len(poset),
                "ideals": total,
                "reference_seconds": reference_seconds,
                "kernel_seconds": kernel_seconds,
                "count_seconds": count_seconds,
                "materialize_seconds": materialize_seconds,
                "reference_ideals_per_sec": total / reference_seconds,
                "kernel_ideals_per_sec": total / kernel_seconds,
                "count_ideals_per_sec": total / count_seconds,
            },
        )

    report_header(f"Ideal lattice: old vs. new kernel, {name}")
    emit(
        f"{total} ideals over {len(poset)} elements "
        f"(width <= {len(poset) // 2})"
    )
    emit(
        f"enumeration: {reference_seconds:.3f}s "
        f"({total / reference_seconds:,.0f} ideals/s) -> "
        f"{kernel_seconds:.3f}s ({total / kernel_seconds:,.0f} ideals/s)"
    )
    emit(
        f"count-only: {count_seconds:.3f}s; materialized frozensets: "
        f"{materialize_seconds:.3f}s"
    )
    emit(f"speedup: {speedup:.1f}x (required >= {required}x)")
    assert speedup >= required
    # Counting must never pay the frozenset materialization cost.
    assert count_seconds < materialize_seconds


@pytest.mark.parametrize("kernel", ["reference", "bitset"])
def test_lattice_enumeration_benchmark(benchmark, kernel):
    """pytest-benchmark timings for both enumerators (``make bench``)."""
    name, processes, batches, _required = WORKLOADS[-1]
    poset = (
        _poset(processes, batches)
        if SMOKE
        else _poset(processes, max(1, batches // 2))
    )
    instrument.disable()
    enumerate_ideals = (
        (lambda: sum(1 for _ in ideals_reference(poset, limit=LIMIT)))
        if kernel == "reference"
        else (lambda: sum(1 for _ in iterate_ideal_masks(poset, limit=LIMIT)))
    )
    assert benchmark(enumerate_ideals) > 0
