"""Experiment batch — the multiprocess socket runtime under load.

Drives sustained rendezvous traffic through `repro.sim.distributed`:
every node is an OS process, every synchronous send rendezvouses
through the coordinator over a Unix socket, and every timestamp
travels as LEB128 bytes on the wire.  Reported per workload:

* sustained **msg/s** over the traffic window (first offer to last
  commit);
* **rendezvous-block latency percentiles** (p50/p95/p99) from the
  coordinator's always-on P² quantile sketches — one observation per
  side of every committed rendezvous;
* **piggyback bytes/s** — the algorithmic vector bytes (offer leg +
  ack leg), byte-compatible with the threaded runtime's
  ``piggyback_size_bytes`` accounting.

The headline workload runs **120 node processes** (4 server hubs,
116 round-robin clients), past the 100-process acceptance floor; a
paced run shows the load driver sustaining a configured target rate.
Before any timing is recorded, the socket runtime is pinned
byte-identical to the threaded runtime on a deterministic script.

Results land in ``BENCH_runtime.json`` (``make bench-runtime``); with
``BENCH_RUNTIME_SMOKE=1`` (the CI smoke step) everything runs at tiny
sizes and the committed snapshot is left untouched unless
``BENCH_RUNTIME_OUT`` points somewhere else.
"""

from __future__ import annotations

import os

from benchmarks.conftest import emit, record_runtime_perf
from repro.graphs.decomposition import decompose
from repro.graphs.generators import ring_topology
from repro.sim.distributed import DistributedScriptRunner, run_load
from repro.sim.runtime import ScriptRunner, receive, send
from repro.sim.wire import encode_vector

SMOKE = os.environ.get("BENCH_RUNTIME_SMOKE") == "1"

#: ``(name, servers, clients, messages_per_client)`` — the node count
#: is ``servers + clients``; the acceptance criterion wants >= 100
#: node processes reporting sustained msg/s, so the headline row runs
#: 120.
WORKLOADS = (
    [("smoke:1x3", 1, 3, 2)]
    if SMOKE
    else [
        ("small:2x10", 2, 10, 8),
        ("mid:4x46", 4, 46, 4),
        ("wide:4x116", 4, 116, 3),
    ]
)

#: Target aggregate rate for the paced (sustained msg/s) run.
PACED_RATE = 40.0 if SMOKE else 150.0
PACED_SHAPE = (1, 4, 3) if SMOKE else (2, 10, 6)

TIMEOUT = 30.0 if SMOKE else 90.0


def test_socket_runtime_is_byte_identical_to_threaded():
    """Correctness pin before any timing: same script, same bytes.

    A token walk forces a total commit order, so the two runtimes must
    agree on the log *and* on every encoded timestamp byte.
    """
    decomposition = decompose(ring_topology(4))
    walk = ["P1", "P2", "P3", "P4", "P1", "P2"]
    scripts: dict = {}
    for step, (holder, nxt) in enumerate(zip(walk, walk[1:])):
        scripts.setdefault(holder, []).append(send(nxt, f"t{step}"))
        scripts.setdefault(nxt, []).append(receive(holder))
    threaded = ScriptRunner(decomposition, scripts, timeout=TIMEOUT).run()
    distributed = DistributedScriptRunner(
        decomposition, scripts, timeout=TIMEOUT
    ).run()
    assert [
        (e.order, e.sender, e.receiver, e.payload) for e in threaded.log
    ] == [
        (e.order, e.sender, e.receiver, e.payload)
        for e in distributed.log
    ]
    assert [
        encode_vector(t) for t in threaded.collected_timestamps()
    ] == [encode_vector(t) for t in distributed.collected_timestamps()]
    emit("equivalence: threaded == socket runtime, byte-identical "
         f"timestamps over {len(distributed.log)} messages")


def test_unpaced_throughput(report_header):
    """Maximum-rate runs: how fast the rendezvous pipeline commits."""
    report_header(
        "Socket runtime throughput (unpaced, one process per node)"
    )
    emit(
        f"{'workload':>14} {'nodes':>6} {'msgs':>6} {'msg/s':>9} "
        f"{'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8} {'piggy B/s':>10}"
    )
    for name, servers, clients, per_client in WORKLOADS:
        transport = run_load(
            server_count=servers,
            client_count=clients,
            messages_per_client=per_client,
            timeout=TIMEOUT,
        )
        stats = transport.stats
        expected = clients * per_client
        assert stats.messages == expected
        assert len(transport.log) == expected
        assert stats.messages_per_sec > 0
        assert stats.nodes == servers + clients
        quantiles = stats.block_quantiles_ms()
        emit(
            f"{name:>14} {stats.nodes:>6} {stats.messages:>6} "
            f"{stats.messages_per_sec:>9.1f} "
            f"{quantiles['p50']:>8.2f} {quantiles['p95']:>8.2f} "
            f"{quantiles['p99']:>8.2f} "
            f"{stats.piggyback_bytes_per_sec:>10.1f}"
        )
        record_runtime_perf(name, stats.to_dict())
    if not SMOKE:
        # The acceptance headline: >= 100 node processes reporting.
        widest = max(
            servers + clients for _, servers, clients, _ in WORKLOADS
        )
        assert widest >= 100


def test_paced_load_sustains_target_rate(report_header):
    """The load driver holds a configured aggregate msg/s."""
    report_header("Socket runtime, paced load driver")
    servers, clients, per_client = PACED_SHAPE
    transport = run_load(
        server_count=servers,
        client_count=clients,
        messages_per_client=per_client,
        rate=PACED_RATE,
        timeout=TIMEOUT,
    )
    stats = transport.stats
    assert stats.messages == clients * per_client
    achieved = stats.messages_per_sec
    # Pacing is client-side sleeps, so the achieved rate can only
    # undershoot the target meaningfully on an overloaded box; it must
    # never overshoot past the pacing plus scheduling jitter.
    assert achieved <= PACED_RATE * 1.6
    emit(
        f"target {PACED_RATE:.0f} msg/s -> achieved {achieved:.1f} "
        f"msg/s over {stats.traffic_seconds:.2f}s "
        f"({stats.messages} messages, {stats.nodes} nodes)"
    )
    record_runtime_perf(
        "paced",
        {"target_msgs_per_sec_config": PACED_RATE, **stats.to_dict()},
    )
