"""Experiment states — the lattice of consistent global states.

Context for the monitoring applications: the number of consistent cuts
(order ideals of the message poset) explodes with concurrency, which is
exactly why timestamp-based tests (one vector comparison) beat
state-space exploration.  We count the lattice for workloads of
increasing concurrency and time the vector-frontier snapshot that
sidesteps it.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.analysis.report import render_table
from repro.clocks.online import OnlineEdgeClock
from repro.core.vector import VectorTimestamp
from repro.graphs.decomposition import decompose
from repro.graphs.generators import complete_topology
from repro.order.cuts import snapshot_at
from repro.order.message_order import message_poset
from repro.sim.workload import (
    adversarial_antichain_computation,
    random_computation,
    sequential_chain_computation,
)
from repro.viz.lattice import lattice_statistics


def test_global_state_counts(benchmark, report_header):
    report_header(
        "Global states: lattice size vs workload concurrency "
        "(16 messages each)"
    )
    topology = complete_topology(8)
    workloads = {
        "chain": sequential_chain_computation(
            topology, 16, random.Random(1)
        ),
        "random": random_computation(topology, 16, random.Random(1)),
        "antichain": adversarial_antichain_computation(topology, 4),
    }

    def count_all():
        return {
            label: lattice_statistics(
                message_poset(computation), limit=2_000_000
            )["states"]
            for label, computation in workloads.items()
        }

    counts = benchmark(count_all)
    emit(
        render_table(
            ["workload", "messages", "consistent global states"],
            [
                [label, len(workloads[label]), counts[label]]
                for label in workloads
            ],
        )
    )
    assert counts["chain"] == 17  # n + 1 for a chain
    assert counts["antichain"] > counts["random"] >= counts["chain"]


def test_snapshot_is_cheap(benchmark, report_header):
    report_header(
        "Global states: vector-frontier snapshot cost "
        "(one comparison per message, no lattice search)"
    )
    topology = complete_topology(8)
    computation = random_computation(topology, 400, random.Random(7))
    clock = OnlineEdgeClock(decompose(topology))
    assignment = clock.timestamp_computation(computation)
    frontier = VectorTimestamp(
        component // 2
        for component in assignment.of(computation.messages[-1])
    )

    cut = benchmark(snapshot_at, computation, assignment, frontier)
    kept = cut.messages(computation)
    emit(
        f"messages=400  snapshot keeps {len(kept)}  "
        f"(frontier = half of the final vector)"
    )
    assert 0 < len(kept) < 400
