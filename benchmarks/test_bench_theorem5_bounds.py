"""Experiment thm5 — vector size ≤ min(β(G), N−2), and β ≤ 2α.

Sweeps topology families, printing for each: the decomposition size our
library actually uses, the optimal vertex cover β, and the paper's
bound.  Also regenerates the tightness example (t disjoint triangles:
α = t, β = 2t).
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.analysis.report import render_table
from repro.graphs.decomposition import decompose, optimal_size
from repro.graphs.generators import (
    client_server_topology,
    complete_topology,
    disjoint_triangles,
    random_gnp,
    ring_topology,
    star_topology,
    tree_topology,
)
from repro.graphs.vertex_cover import minimum_vertex_cover_size


def test_theorem5_bound_sweep(benchmark, report_header):
    report_header("Theorem 5: d <= min(beta(G), N-2) across families")

    families = {
        "star(8)": star_topology(7),
        "ring(8)": ring_topology(8),
        "tree(3x4)": tree_topology(3, 4),
        "client-server(2S,8C)": client_server_topology(2, 8),
        "complete(8)": complete_topology(8),
        "gnp(9,0.4)": random_gnp(9, 0.4, random.Random(4)),
    }

    def sweep():
        rows = []
        for label, graph in families.items():
            d = decompose(graph).size
            beta = minimum_vertex_cover_size(graph)
            n = graph.vertex_count()
            bound = max(1, min(beta, n - 2))
            rows.append([label, n, d, beta, bound, d <= bound])
        return rows

    rows = benchmark(sweep)
    emit(
        render_table(
            ["topology", "N", "d (ours)", "beta", "min(beta,N-2)", "holds"],
            rows,
        )
    )
    assert all(row[-1] for row in rows)


def test_theorem5_tightness_disjoint_triangles(benchmark, report_header):
    report_header(
        "Theorem 5 tightness: t disjoint triangles give beta = 2*alpha"
    )

    def sweep():
        rows = []
        for t in (1, 2, 3, 4):
            graph = disjoint_triangles(t)
            alpha = optimal_size(graph)
            beta = minimum_vertex_cover_size(graph)
            rows.append([t, alpha, beta, beta == 2 * alpha])
        return rows

    rows = benchmark(sweep)
    emit(render_table(["t", "alpha", "beta", "beta == 2*alpha"], rows))
    assert all(row[-1] for row in rows)
