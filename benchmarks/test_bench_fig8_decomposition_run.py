"""Experiment fig8 — the narrated sample run of the Figure 7 algorithm.

Regenerates the step-by-step trace on the Figure 2(b) topology and
checks it matches the paper's narration exactly: star (step 1),
triangle (step 2), two stars (step 3), star (j,k) (step 1 again); the
result — 4 stars + 1 triangle — equals the optimum shown in Figure 8(f).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.report import render_table
from repro.graphs.decomposition import (
    optimal_edge_decomposition,
    paper_decomposition_algorithm,
)
from repro.graphs.generators import paper_fig2b_graph


def test_fig8_sample_run(benchmark, report_header):
    report_header("Figure 8: sample run of the decomposition algorithm")
    graph = paper_fig2b_graph()
    decomposition, trace = benchmark(paper_decomposition_algorithm, graph)

    emit(trace.describe())
    emit("")
    emit(
        render_table(
            ["measured", "paper"],
            [
                [
                    f"steps {trace.steps_fired()}",
                    "steps [1, 2, 3, 3, 1]",
                ],
                [
                    f"{decomposition.star_count()} stars + "
                    f"{decomposition.triangle_count()} triangle",
                    "4 stars + 1 triangle",
                ],
            ],
        )
    )
    assert trace.steps_fired() == [1, 2, 3, 3, 1]
    assert decomposition.star_count() == 4
    assert decomposition.triangle_count() == 1


def test_fig8f_optimal_decomposition(benchmark, report_header):
    report_header("Figure 8(f): the optimal decomposition (exact search)")
    graph = paper_fig2b_graph()
    optimum = benchmark(optimal_edge_decomposition, graph)
    produced, _ = paper_decomposition_algorithm(graph)
    emit(
        render_table(
            ["algorithm output", "optimal", "ratio"],
            [[produced.size, optimum.size, produced.size / optimum.size]],
        )
    )
    emit(optimum.describe())
    assert optimum.size == 5
    assert produced.size == optimum.size
