"""Experiment profiles — concurrency shape of every workload family.

Not a paper figure per se, but the context for all of them: the width,
height and concurrency density of each workload family determine which
clock wins by how much (width = offline vector size; concurrency ratio
= where Lamport/plausible degrade).
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.analysis.profile import profile_computation, profile_rows
from repro.analysis.report import render_table
from repro.graphs.generators import (
    complete_topology,
    path_topology,
    ring_topology,
    star_topology,
)
from repro.sim.workload import (
    adversarial_antichain_computation,
    master_worker_computation,
    phased_computation,
    pipeline_computation,
    random_computation,
    ring_token_computation,
    sequential_chain_computation,
)


def test_workload_concurrency_profiles(benchmark, report_header):
    report_header("Concurrency profiles of the workload families")

    def build_profiles():
        rng = random.Random(31)
        k8 = complete_topology(8)
        return {
            "random/K8": profile_computation(
                random_computation(k8, 80, rng)
            ),
            "chain/K8": profile_computation(
                sequential_chain_computation(k8, 80, rng)
            ),
            "antichain/K8": profile_computation(
                adversarial_antichain_computation(k8, 20)
            ),
            "phased/K8": profile_computation(
                phased_computation(k8, 5, rng, messages_per_phase=10)
            ),
            "ring-token": profile_computation(
                ring_token_computation(ring_topology(8), 10)
            ),
            "pipeline": profile_computation(
                pipeline_computation(path_topology(6), 12)
            ),
            "master-worker": profile_computation(
                master_worker_computation(star_topology(7), "P1", 5)
            ),
        }

    profiles = benchmark(build_profiles)
    emit(
        render_table(
            [
                "workload",
                "msgs",
                "width",
                "height",
                "order density",
                "concurrency",
            ],
            profile_rows(profiles),
        )
    )
    assert profiles["chain/K8"].width == 1
    assert profiles["antichain/K8"].width == 4
    assert profiles["ring-token"].width == 1
    assert profiles["master-worker"].width == 1
