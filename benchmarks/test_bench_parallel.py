"""Experiment batch — serial vs. sharded stamping engine.

Exercises :mod:`repro.core.parallel` on a federated workload the
planners can actually cut: ``multi_cluster_computation`` builds 16
independent 8x22 client/server cells (messages concatenated in cluster
order), so the offline row-block planner finds 16 contiguous blocks and
the online segment planner 16 process components.

Two timed regions:

* **offline closure + partition** — serial: ``Poset(messages, pairs)``
  then ``minimum_chain_partition``; sharded:
  ``parallel_poset_and_chains`` with ``workers=4``.  This is the
  tentpole's gated number: the block-local closure works on block-sized
  big-ints instead of whole-computation rows and the per-block
  Hopcroft–Karp avoids the global matcher's superlinear BFS phases, so
  the sharded region must be at least ``REQUIRED_SPEEDUP``x faster at
  20k messages.
* **online batch stamping** — serial ``stamp_batch`` vs.
  ``stamp_batch_parallel``.  Recorded for the trajectory (on a
  single-core host the sharded stamper runs the same interpreter loop,
  so expect ~1x); no assertion.

Before any timing, both regions are pinned byte-identical to serial
(rows, chains, timestamps).  Results land in ``BENCH_parallel.json``
(``make bench-parallel``); with ``BENCH_PARALLEL_SMOKE=1`` (the CI
smoke step) everything runs one round at reduced sizes and the
committed snapshot is untouched; ``BENCH_PARALLEL_OUT`` redirects the
snapshot (the CI artifact directory).
"""

from __future__ import annotations

import os
import random
import time

import pytest

from benchmarks.conftest import emit, record_parallel_perf
from repro.core.chains import minimum_chain_partition
from repro.core.fastpath import stamp_batch
from repro.core.parallel import (
    available_workers,
    parallel_poset_and_chains,
    resolve_workers,
    stamp_batch_parallel,
)
from repro.core.poset import Poset
from repro.graphs.decomposition import decompose
from repro.obs import instrument
from repro.order.message_order import covering_pairs
from repro.sim.workload import multi_cluster_computation

SMOKE = os.environ.get("BENCH_PARALLEL_SMOKE") == "1"

#: 16 clusters x per-cluster messages; each cluster is a full-mesh 8x22
#: client/server cell, so the poset is block diagonal with 16 blocks.
CLUSTERS = 16
OFFLINE_SIZES = (2_000,) if SMOKE else (5_000, 20_000)
ONLINE_SIZE = 2_000 if SMOKE else 20_000
REPEATS = 1 if SMOKE else 3
WORKERS = 4
#: Gated at the 20k offline region only (full run): the sharded
#: closure+partition must beat serial by at least this factor.
REQUIRED_SPEEDUP = 2.5


def _workload(total_messages: int):
    # Rounded up to a whole per-cluster count, so nominal sizes that
    # are not multiples of CLUSTERS (e.g. 5k) stay within one cluster's
    # worth of the label.
    per_cluster = -(-total_messages // CLUSTERS)
    return multi_cluster_computation(
        CLUSTERS, per_cluster, random.Random(7)
    )


def _best(fn) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _serial_offline(computation):
    poset = Poset(computation.messages, covering_pairs(computation))
    return poset, minimum_chain_partition(poset)


def _sharded_offline(computation):
    result = parallel_poset_and_chains(computation, workers=WORKERS)
    assert result is not None, "planner found no blocks to shard"
    return result


@pytest.mark.parametrize("messages", OFFLINE_SIZES)
def test_offline_sharding_matches_serial(report_header, messages):
    """Byte-identical rows, chains, and width before any timing."""
    computation = _workload(messages)
    poset, chains = _serial_offline(computation)
    sharded_poset, sharded_chains, shards = _sharded_offline(computation)

    assert sharded_poset.above_bit_rows() == poset.above_bit_rows()
    assert sharded_poset.below_bit_rows() == poset.below_bit_rows()
    assert sharded_chains == chains
    report_header(
        f"Sharded offline region: equivalence at {messages} messages"
    )
    emit(
        f"{messages} messages in {shards} shards "
        f"(width {len(chains)}): rows and chains identical"
    )


@pytest.mark.parametrize("messages", OFFLINE_SIZES)
def test_offline_sharding_speedup_snapshot(report_header, messages):
    """The gated number: serial vs. sharded closure + chain partition."""
    computation = _workload(messages)
    instrument.disable()

    serial_seconds = _best(lambda: _serial_offline(computation))
    parallel_seconds = _best(lambda: _sharded_offline(computation))
    speedup = serial_seconds / parallel_seconds
    _, chains, shards = _sharded_offline(computation)

    record_parallel_perf(
        f"offline_closure_{messages // 1000}k",
        {
            "workload": f"multi-cluster:{CLUSTERS}x8x22",
            "messages": len(computation.messages),
            "width": len(chains),
            "shards": shards,
            "workers_requested": WORKERS,
            "workers_resolved": min(
                resolve_workers(WORKERS), available_workers()
            ),
            "available_workers": available_workers(),
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
        },
    )
    report_header(
        f"Sharded offline region: {messages} messages, "
        f"{WORKERS} workers"
    )
    emit(
        f"serial closure+partition:  {serial_seconds:.3f}s"
    )
    emit(
        f"sharded closure+partition: {parallel_seconds:.3f}s "
        f"({shards} shards)"
    )
    emit(f"speedup: {speedup:.2f}x")
    if not SMOKE and messages >= 20_000:
        emit(f"(gated: required >= {REQUIRED_SPEEDUP}x)")
        assert speedup >= REQUIRED_SPEEDUP


def test_online_sharding_snapshot(report_header):
    """Trajectory row: serial vs. sharded batch stamping (no gate)."""
    computation = _workload(ONLINE_SIZE)
    decomposition = decompose(computation.topology)
    instrument.disable()

    serial = stamp_batch(computation, decomposition)
    sharded = stamp_batch_parallel(
        computation, decomposition, workers=WORKERS
    )
    assert list(sharded) == list(serial)
    assert all(
        sharded[m].components == serial[m].components
        for m in computation.messages
    )

    serial_seconds = _best(
        lambda: stamp_batch(computation, decomposition)
    )
    parallel_seconds = _best(
        lambda: stamp_batch_parallel(
            computation, decomposition, workers=WORKERS
        )
    )
    record_parallel_perf(
        f"batch_stamping_{ONLINE_SIZE // 1000}k",
        {
            "workload": f"multi-cluster:{CLUSTERS}x8x22",
            "messages": len(computation.messages),
            "shards": CLUSTERS,
            "workers_requested": WORKERS,
            "workers_resolved": min(
                resolve_workers(WORKERS), available_workers()
            ),
            "available_workers": available_workers(),
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
        },
    )
    report_header(
        f"Sharded batch stamping: {ONLINE_SIZE} messages, "
        f"{WORKERS} workers"
    )
    emit(f"serial stamp_batch:   {serial_seconds:.3f}s")
    emit(f"sharded stamp_batch:  {parallel_seconds:.3f}s")
    emit(
        f"speedup: {serial_seconds / parallel_seconds:.2f}x "
        "(informational; identical output asserted above)"
    )
