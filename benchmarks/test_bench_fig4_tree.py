"""Experiment fig4 — the 20-process tree and its 3-star decomposition.

Regenerates Figure 4 (three edge groups E1, E2, E3) and extends it with
the scaling claim of Section 3.3: growing the leaf population leaves the
decomposition size — and therefore the timestamp size — unchanged, while
Fidge–Mattern's grows linearly.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.report import render_table
from repro.graphs.decomposition import paper_decomposition_algorithm
from repro.graphs.generators import paper_fig4_tree, tree_topology


def test_fig4_tree_decomposition(benchmark, report_header):
    report_header("Figure 4: tree-based computation with 20 processes")
    graph = paper_fig4_tree()
    decomposition, _ = benchmark(paper_decomposition_algorithm, graph)
    emit(
        render_table(
            ["processes", "edges", "edge groups", "paper"],
            [[graph.vertex_count(), graph.edge_count(), decomposition.size, 3]],
        )
    )
    emit(decomposition.describe())
    assert decomposition.size == 3
    assert all(group.kind == "star" for group in decomposition.groups)


def test_fig4_leaf_scaling(benchmark, report_header):
    report_header(
        "Figure 4 extension: vector size is constant as leaves grow"
    )

    def sweep():
        rows = []
        for leaves in (2, 5, 10, 20, 40):
            graph = tree_topology(3, leaves)
            decomposition, _ = paper_decomposition_algorithm(graph)
            rows.append(
                [
                    graph.vertex_count(),
                    decomposition.size,
                    graph.vertex_count(),  # FM size
                ]
            )
        return rows

    rows = benchmark(sweep)
    emit(
        render_table(
            ["N (processes)", "online size d", "FM size N"], rows
        )
    )
    sizes = {row[1] for row in rows}
    assert sizes == {3}, "decomposition size must stay constant"
