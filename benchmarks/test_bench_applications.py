"""Experiment apps — the introduction's motivating applications, timed.

* **Dynamic client churn**: clients join a client–server system at
  runtime; the timestamp size must remain the server count throughout
  (the operational version of the Section 3.3 claim).
* **Predicate detection**: weak conjunctive predicate search driven
  purely by event-timestamp comparisons.
* **Orphan detection**: rollback-recovery classification via vector
  dominance tests.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.analysis.report import render_table
from repro.apps.predicate_detection import detect_weak_conjunctive_predicate
from repro.apps.recovery import find_orphans
from repro.clocks.events import timestamp_internal_events
from repro.clocks.online import OnlineEdgeClock
from repro.graphs.decomposition import decompose
from repro.graphs.dynamic import DynamicOnlineSystem
from repro.graphs.generators import client_server_topology, complete_topology
from repro.order.checker import check_encoding
from repro.sim.computation import EventedComputation
from repro.sim.workload import random_computation


def test_dynamic_client_churn(benchmark, report_header):
    report_header(
        "Application: client churn — vector size under joins"
    )

    def churn():
        system = DynamicOnlineSystem(
            decompose(client_server_topology(3, 3))
        )
        rng = random.Random(5)
        sizes = [system.vector_size]
        for serial in range(60):
            client = f"C_join{serial}"
            server = f"S{rng.randint(1, 3)}"
            system.connect(client, server)
            system.send_message(client, server)
            system.send_message(server, client)
            sizes.append(system.vector_size)
        return system, sizes

    system, sizes = benchmark(churn)
    emit(
        render_table(
            ["joins", "messages", "vector size (start)", "vector size (end)"],
            [[60, 120, sizes[0], sizes[-1]]],
        )
    )
    assert set(sizes) == {3}
    clock = OnlineEdgeClock(system.decomposition.snapshot())
    assert check_encoding(clock, system.assignment()).characterizes


def test_predicate_detection(benchmark, report_header):
    report_header(
        "Application: weak conjunctive predicate detection via "
        "event-timestamp comparisons"
    )
    topology = complete_topology(6)
    computation = random_computation(topology, 40, random.Random(17))
    evented = EventedComputation.with_events_per_slot(computation, 1)
    clock = OnlineEdgeClock(decompose(topology))
    assignment = clock.timestamp_computation(computation)
    stamps = timestamp_internal_events(
        evented, assignment, clock.timestamp_size
    )
    rng = random.Random(3)
    candidates = {}
    for process in computation.processes:
        events = [
            e
            for e in evented.internal_events()
            if e.process == process and rng.random() < 0.5
        ]
        if events:
            candidates[process] = events

    witness = benchmark(
        detect_weak_conjunctive_predicate, candidates, stamps
    )
    total = sum(len(v) for v in candidates.values())
    emit(
        f"processes={len(candidates)} candidate events={total} "
        f"witness found={witness is not None}"
    )
    if witness is not None:
        emit(repr(witness))


def test_orphan_detection(benchmark, report_header):
    report_header(
        "Application: orphan detection for rollback recovery "
        "(pure vector dominance tests)"
    )
    topology = complete_topology(8)
    computation = random_computation(topology, 200, random.Random(23))
    clock = OnlineEdgeClock(decompose(topology))
    assignment = clock.timestamp_computation(computation)

    report = benchmark(find_orphans, computation, assignment, "P1", 2)
    emit(
        render_table(
            ["crashed", "stable", "lost", "orphans", "survivors"],
            [
                [
                    "P1",
                    2,
                    len(report.lost),
                    len(report.orphans),
                    len(report.surviving_messages(computation)),
                ]
            ],
        )
    )
    assert len(report.lost) + len(report.orphans) + len(
        report.surviving_messages(computation)
    ) == len(computation)
