"""Experiment fig1 — the Figure 1 computation and its order relations.

Regenerates every relation the paper states for Figure 1 and times the
ground-truth poset construction on computations of that shape.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.analysis.report import render_table
from repro.order.message_order import (
    longest_chain_size_between,
    message_poset,
)
from repro.sim.paper_figures import figure1_computation
from repro.sim.workload import random_computation
from repro.viz.timediagram import render_time_diagram


def test_fig1_relations(benchmark, report_header):
    report_header("Figure 1: a synchronous computation with 4 processes")
    computation = figure1_computation()
    poset = benchmark(message_poset, computation)

    def m(name):
        return computation.message(name)

    rows = [
        ["m1 || m2", poset.concurrent(m("m1"), m("m2")), "m1 || m2"],
        ["m1 |> m3", poset.less(m("m1"), m("m3")), "m1 |> m3"],
        ["m2 -> m6", poset.less(m("m2"), m("m6")), "m2 -> m6"],
        ["m3 -> m5", poset.less(m("m3"), m("m5")), "m3 -> m5"],
        [
            "chain m1..m5 size",
            longest_chain_size_between(computation, m("m1"), m("m5")),
            "4",
        ],
    ]
    emit(render_table(["relation", "measured", "paper"], rows))
    emit("")
    emit(render_time_diagram(computation))

    assert poset.concurrent(m("m1"), m("m2"))
    assert poset.less(m("m2"), m("m6"))
    assert poset.less(m("m3"), m("m5"))
    assert (
        longest_chain_size_between(computation, m("m1"), m("m5")) == 4
    )


def test_fig1_poset_construction_scaling(benchmark, report_header):
    report_header(
        "Figure 1 substrate: ground-truth poset construction cost"
    )
    from repro.graphs.generators import path_topology

    topology = path_topology(4)
    computation = random_computation(topology, 200, random.Random(1))
    poset = benchmark(message_poset, computation)
    emit(
        f"messages={len(computation)}  ordered_pairs="
        f"{len(poset.relation_pairs())}"
    )
    assert len(poset) == 200
