"""Experiment fig9 — the offline algorithm (Figure 9).

Times the complete offline pipeline (poset → width → chain partition →
realizer → ranks) and reports the achieved vector sizes against the
Theorem 8 budget.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import emit
from repro.analysis.report import render_table
from repro.clocks.offline import OfflineRealizerClock, theorem8_bound
from repro.graphs.generators import complete_topology
from repro.order.checker import check_encoding
from repro.sim.workload import (
    adversarial_antichain_computation,
    random_computation,
    sequential_chain_computation,
)

WORKLOADS = ["random", "chain", "antichain"]


def _build(workload: str):
    topology = complete_topology(10)
    if workload == "random":
        return random_computation(topology, 150, random.Random(3))
    if workload == "chain":
        return sequential_chain_computation(topology, 150, random.Random(3))
    return adversarial_antichain_computation(topology, 30)


@pytest.mark.parametrize("workload", WORKLOADS, ids=WORKLOADS)
def test_fig9_offline_pipeline(benchmark, report_header, workload):
    computation = _build(workload)
    clock = OfflineRealizerClock()
    assignment = benchmark(clock.timestamp_computation, computation)

    report_header(f"Figure 9: offline algorithm on '{workload}' workload")
    emit(
        render_table(
            ["workload", "messages", "width (vector size)", "floor(N/2)"],
            [
                [
                    workload,
                    len(computation),
                    clock.timestamp_size,
                    theorem8_bound(computation),
                ]
            ],
        )
    )
    assert clock.timestamp_size <= max(1, theorem8_bound(computation))
    report = check_encoding(clock, assignment)
    assert report.characterizes
