"""Experiment thm6 — empirical approximation ratio of the Figure 7
algorithm (proved bound: 2), with an ablation of the step-3 heuristic.

Sweeps random graphs, compares the algorithm's decomposition size to the
exact optimum, and reports the worst and mean ratio for the paper's
most-adjacent-edge pivot versus a first-edge pivot (the proof does not
depend on the choice, so both must stay below 2 — the interesting
question is how much the heuristic helps in practice).
"""

from __future__ import annotations

import random
from typing import List

from benchmarks.conftest import emit
from repro.analysis.report import render_table
from repro.graphs.decomposition import (
    optimal_size,
    paper_decomposition_algorithm,
)
from repro.graphs.generators import random_gnp

TRIALS = 25


def _ratios(step3_choice: str) -> List[float]:
    ratios = []
    for seed in range(TRIALS):
        graph = random_gnp(8, 0.45, random.Random(seed))
        if graph.edge_count() == 0:
            continue
        produced, _ = paper_decomposition_algorithm(
            graph, step3_choice=step3_choice
        )
        ratios.append(produced.size / optimal_size(graph))
    return ratios


def test_theorem6_ratio_and_step3_ablation(benchmark, report_header):
    report_header(
        "Theorem 6: empirical approximation ratio (bound: 2.0), "
        "plus step-3 pivot ablation"
    )
    heuristic = benchmark(_ratios, "most-adjacent")
    naive = _ratios("first")

    rows = [
        [
            "most-adjacent (paper)",
            f"{max(heuristic):.2f}",
            f"{sum(heuristic) / len(heuristic):.3f}",
        ],
        [
            "first-edge (ablation)",
            f"{max(naive):.2f}",
            f"{sum(naive) / len(naive):.3f}",
        ],
    ]
    emit(render_table(["step-3 pivot", "worst ratio", "mean ratio"], rows))
    # Theorem 6 guarantees the bound for both pivot rules; which one is
    # better on average is what the printed table reports.
    assert max(heuristic) <= 2.0
    assert max(naive) <= 2.0
