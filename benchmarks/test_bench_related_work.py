"""Experiment related-work — the Section 6 trade-off space, measured.

The paper positions its clocks against three families of related work;
this bench puts numbers on each comparison:

* **Plausible clocks** (Torres-Rojas & Ahamad): constant size but lossy.
  We sweep the component count R and report ordering accuracy — the
  fraction of truly concurrent pairs still recognised as concurrent.
  The paper's clocks sit at accuracy 1.0 with R = d (topology-sized).
* **Singhal–Kshemkalyani**: FM with differential transmission.  We
  report scalars moved per message against FM-full and against the
  online clock's fixed d.
* **Fowler–Zwaenepoel**: measured in ``test_bench_throughput.py``
  (per-query tracing cost).
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.analysis.report import render_table
from repro.clocks.plausible import PlausibleCombClock, ordering_accuracy
from repro.clocks.singhal_kshemkalyani import SKDifferentialClock
from repro.graphs.decomposition import decompose
from repro.graphs.generators import client_server_topology, complete_topology
from repro.order.message_order import message_poset
from repro.sim.workload import client_server_computation, random_computation


def test_plausible_clock_accuracy_sweep(benchmark, report_header):
    report_header(
        "Related work: plausible clocks — size vs ordering accuracy "
        "(paper's online clock: accuracy 1.0 at topology-sized d)"
    )
    topology = complete_topology(10)
    computation = random_computation(topology, 120, random.Random(21))
    poset = message_poset(computation)
    online_d = decompose(topology).size

    def sweep():
        rows = []
        for size in (1, 2, 4, 6, 8, 10):
            clock = PlausibleCombClock.for_topology(topology, size)
            assignment = clock.timestamp_computation(computation)
            rows.append(
                [
                    size,
                    f"{ordering_accuracy(clock, assignment, poset):.3f}",
                ]
            )
        return rows

    rows = benchmark(sweep)
    rows.append([f"{online_d} (online, exact)", "1.000"])
    emit(render_table(["components R", "ordering accuracy"], rows))
    assert rows[-2][1] == "1.000"  # R = N is exact (it is FM)


def test_sk_differential_transmission(benchmark, report_header):
    report_header(
        "Related work: Singhal-Kshemkalyani differential transmission "
        "vs FM-full vs the online clock's fixed d"
    )
    topology = client_server_topology(3, 27)  # N = 30
    computation = client_server_computation(
        topology, 150, random.Random(13)
    )
    sk = SKDifferentialClock(topology.vertices)

    _, stats = benchmark(sk.timestamp_with_stats, computation)
    online_d = decompose(topology).size
    emit(
        render_table(
            ["scheme", "scalars per message (msg+ack)"],
            [
                ["FM full vectors", 2 * stats.vector_size],
                ["FM + SK differential", f"{stats.mean:.1f}"],
                ["online (this paper)", 2 * online_d],
            ],
        )
    )
    # The paper's clock beats both on this topology: d = 3 vs N = 30.
    assert 2 * online_d < stats.mean < 2 * stats.vector_size
