"""Experiment fig5 — the online algorithm itself (Figure 5).

Times the full send/receive/ack handshake per message across topology
families and confirms Equation (1) on each workload.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import emit
from repro.clocks.online import OnlineEdgeClock
from repro.graphs.decomposition import decompose
from repro.graphs.generators import (
    client_server_topology,
    complete_topology,
    star_topology,
    tree_topology,
)
from repro.order.checker import check_encoding
from repro.sim.workload import random_computation

FAMILIES = {
    "star(16)": star_topology(15),
    "tree(4 hubs x 5)": tree_topology(4, 5),
    "client-server(3S,20C)": client_server_topology(3, 20),
    "complete(12)": complete_topology(12),
}


@pytest.mark.parametrize("family", list(FAMILIES), ids=list(FAMILIES))
def test_fig5_online_timestamping(benchmark, report_header, family):
    topology = FAMILIES[family]
    decomposition = decompose(topology)
    clock = OnlineEdgeClock(decomposition)
    computation = random_computation(topology, 300, random.Random(7))

    assignment = benchmark(clock.timestamp_computation, computation)

    report_header(f"Figure 5: online algorithm on {family}")
    emit(
        f"messages=300  vector size d={clock.timestamp_size}  "
        f"FM would use N={topology.vertex_count()}"
    )
    report = check_encoding(clock, assignment)
    emit(
        f"equation (1) holds: {report.characterizes}  "
        f"(ordered pairs={report.ordered_pairs}, "
        f"concurrent pairs={report.concurrent_pairs})"
    )
    assert report.characterizes
