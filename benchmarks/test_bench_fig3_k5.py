"""Experiment fig3 — the two edge decompositions of K5 (Figure 3).

The paper shows (a) 2 stars + 1 triangle and (b) 4 stars; we regenerate
both, confirm the first is optimal, and extend the series over N the way
the text describes (N-3 stars + 1 triangle vs N-1 stars).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.report import render_table
from repro.graphs.decomposition import (
    complete_graph_decompositions,
    optimal_size,
)
from repro.graphs.generators import complete_topology


def test_fig3_k5_decompositions(benchmark, report_header):
    report_header("Figure 3: edge decompositions of K5")
    graph = complete_topology(5)
    with_triangle, stars_only = benchmark(
        complete_graph_decompositions, graph
    )
    emit(
        render_table(
            ["decomposition", "stars", "triangles", "size", "paper"],
            [
                [
                    "(a) stars+triangle",
                    with_triangle.star_count(),
                    with_triangle.triangle_count(),
                    with_triangle.size,
                    "2 stars + 1 triangle",
                ],
                [
                    "(b) stars only",
                    stars_only.star_count(),
                    stars_only.triangle_count(),
                    stars_only.size,
                    "4 stars",
                ],
            ],
        )
    )
    assert with_triangle.size == 3 and stars_only.size == 4
    assert optimal_size(graph) == 3


def test_fig3_series_over_n(benchmark, report_header):
    report_header("Figure 3 extension: complete graphs K4..K9")

    def sweep():
        rows = []
        for n in range(4, 10):
            graph = complete_topology(n)
            with_triangle, stars_only = complete_graph_decompositions(graph)
            rows.append(
                [n, with_triangle.size, stars_only.size, n - 2, n - 1]
            )
        return rows

    rows = benchmark(sweep)
    for n, with_triangle_size, stars_only_size, *_ in rows:
        assert with_triangle_size == n - 2
        assert stars_only_size == n - 1
    emit(
        render_table(
            [
                "N",
                "stars+triangle",
                "stars only",
                "paper N-2",
                "paper N-1",
            ],
            rows,
        )
    )
