"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one of the paper's figures (or a
theorem's quantitative claim) and reports the reproduced rows with
``emit``.  Reports are buffered per test and flushed to the real stdout
in fixture teardown with capture suspended, so the reproduction tables
appear in plain ``pytest benchmarks/ --benchmark-only`` output — no
``-s`` needed.
"""

from __future__ import annotations

import datetime
import json
import pathlib
from typing import Dict, List

import pytest

_REPORT_BUFFER: List[str] = []

#: Perf snapshot entries accumulated by the bench tests (see
#: ``record_perf``), flushed to ``BENCH_obs.json`` at session end.
_PERF_SNAPSHOT: Dict[str, object] = {}

#: Batch fast-path snapshot entries (see ``record_batch_perf``),
#: flushed to ``BENCH_batch.json`` at session end.
_BATCH_SNAPSHOT: Dict[str, object] = {}

#: Offline-pipeline snapshot entries (see ``record_offline_perf``),
#: flushed to ``BENCH_offline.json`` at session end.
_OFFLINE_SNAPSHOT: Dict[str, object] = {}

#: Lattice-kernel snapshot entries (see ``record_lattice_perf``),
#: flushed to ``BENCH_lattice.json`` at session end.
_LATTICE_SNAPSHOT: Dict[str, object] = {}

#: Distributed-runtime snapshot entries (see ``record_runtime_perf``),
#: flushed to ``BENCH_runtime.json`` at session end.
_RUNTIME_SNAPSHOT: Dict[str, object] = {}

#: Sharded-engine snapshot entries (see ``record_parallel_perf``),
#: flushed to ``BENCH_parallel.json`` at session end.
_PARALLEL_SNAPSHOT: Dict[str, object] = {}

#: Wire-format shootout entries (see ``record_wire_perf``), flushed to
#: ``BENCH_wire.json`` at session end.
_WIRE_SNAPSHOT: Dict[str, object] = {}

PERF_SNAPSHOT_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_obs.json"
)

BATCH_SNAPSHOT_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_batch.json"
)

OFFLINE_SNAPSHOT_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_offline.json"
)

LATTICE_SNAPSHOT_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_lattice.json"
)

RUNTIME_SNAPSHOT_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_runtime.json"
)

PARALLEL_SNAPSHOT_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
)

WIRE_SNAPSHOT_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_wire.json"
)


def record_perf(key: str, value) -> None:
    """Add one entry to the ``BENCH_obs.json`` perf snapshot.

    The snapshot tracks the cost of the observability layer run to run
    (messages/sec with instrumentation off vs. on), so perf regressions
    in the hook path show up as a trajectory, not an anecdote.
    """
    _PERF_SNAPSHOT[key] = value


def record_batch_perf(key: str, value) -> None:
    """Add one entry to the ``BENCH_batch.json`` perf snapshot.

    Tracks slow (per-object handshake) vs. fast (``stamp_batch``)
    online stamping throughput across runs.
    """
    _BATCH_SNAPSHOT[key] = value


def record_offline_perf(key: str, value) -> None:
    """Add one entry to the ``BENCH_offline.json`` perf snapshot.

    Tracks the offline (Figure 9) pipeline on the reference dict-of-sets
    poset kernel vs. the bitset kernel: construction, width, and full
    stamping times plus the old-vs-new speedups.
    """
    _OFFLINE_SNAPSHOT[key] = value


def record_lattice_perf(key: str, value) -> None:
    """Add one entry to the ``BENCH_lattice.json`` perf snapshot.

    Tracks ideal-lattice enumeration on the layered-BFS reference vs.
    the chain-indexed bitset kernel: ideals/sec for both, counting vs.
    materializing, and the old-vs-new speedups.
    """
    _LATTICE_SNAPSHOT[key] = value


def record_runtime_perf(key: str, value) -> None:
    """Add one entry to the ``BENCH_runtime.json`` perf snapshot.

    Tracks the multiprocess socket runtime: sustained msg/s through the
    rendezvous pipeline, block-latency percentiles (P² sketches), and
    piggyback bytes/s measured on the wire.
    """
    _RUNTIME_SNAPSHOT[key] = value


def record_parallel_perf(key: str, value) -> None:
    """Add one entry to the ``BENCH_parallel.json`` perf snapshot.

    Tracks the sharded stamping engine (``repro.core.parallel``):
    serial vs. N-worker wall time for online batch stamping and the
    offline closure + chain-partition region, plus the shard counts and
    the worker budget the host actually granted.
    """
    _PARALLEL_SNAPSHOT[key] = value


def record_wire_perf(key: str, value) -> None:
    """Add one entry to the ``BENCH_wire.json`` perf snapshot.

    Tracks the piggyback wire-format shootout (full varint vectors vs.
    the differential codec vs. bounded-K): bytes per message on the
    wire, stamp+encode throughput, and comparison throughput.
    """
    _WIRE_SNAPSHOT[key] = value


def _utc_now_iso() -> str:
    return datetime.datetime.now(datetime.timezone.utc).isoformat()


@pytest.fixture(scope="session", autouse=True)
def _write_perf_snapshot():
    """Flush recorded perf entries to ``BENCH_obs.json`` on teardown."""
    _PERF_SNAPSHOT.clear()
    yield
    if not _PERF_SNAPSHOT:
        return
    payload = dict(_PERF_SNAPSHOT)
    off = payload.get("online_stamping_off")
    on = payload.get("online_stamping_on")
    if isinstance(off, dict) and isinstance(on, dict):
        payload["obs_overhead_ratio"] = on["seconds"] / off["seconds"]
    payload["generated_utc"] = _utc_now_iso()
    PERF_SNAPSHOT_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


@pytest.fixture(scope="session", autouse=True)
def _write_batch_snapshot():
    """Flush recorded batch entries to ``BENCH_batch.json`` on teardown.

    Smoke runs (``BENCH_BATCH_SMOKE=1``, the CI smoke step) leave the
    committed snapshot untouched; ``BENCH_BATCH_OUT`` redirects the
    (smoke or full) snapshot elsewhere, e.g. a CI artifact directory.
    """
    import os

    _BATCH_SNAPSHOT.clear()
    yield
    if not _BATCH_SNAPSHOT:
        return
    payload = dict(_BATCH_SNAPSHOT)
    slow = payload.get("handshake_path")
    fast = payload.get("batch_path")
    if isinstance(slow, dict) and isinstance(fast, dict):
        payload["batch_speedup"] = slow["seconds"] / fast["seconds"]
    payload["generated_utc"] = _utc_now_iso()
    override = os.environ.get("BENCH_BATCH_OUT")
    if override:
        path = pathlib.Path(override)
        path.parent.mkdir(parents=True, exist_ok=True)
    elif os.environ.get("BENCH_BATCH_SMOKE") == "1":
        return
    else:
        path = BATCH_SNAPSHOT_PATH
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


@pytest.fixture(scope="session", autouse=True)
def _write_offline_snapshot():
    """Flush recorded offline-pipeline entries to ``BENCH_offline.json``.

    Smoke runs (``BENCH_OFFLINE_SMOKE=1``, the CI smoke step) record
    nothing and therefore never rewrite the committed snapshot.
    """
    _OFFLINE_SNAPSHOT.clear()
    yield
    if not _OFFLINE_SNAPSHOT:
        return
    payload = dict(_OFFLINE_SNAPSHOT)
    for size_key in list(payload):
        entry = payload[size_key]
        if not isinstance(entry, dict):
            continue
        reference = entry.get("reference_seconds")
        bitset = entry.get("bitset_seconds")
        if isinstance(reference, float) and isinstance(bitset, float):
            entry["speedup"] = reference / bitset
    payload["generated_utc"] = _utc_now_iso()
    OFFLINE_SNAPSHOT_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


@pytest.fixture(scope="session", autouse=True)
def _write_lattice_snapshot():
    """Flush recorded lattice entries to ``BENCH_lattice.json``.

    Smoke runs (``BENCH_LATTICE_SMOKE=1``, the CI smoke step) record
    nothing and therefore never rewrite the committed snapshot.
    """
    _LATTICE_SNAPSHOT.clear()
    yield
    if not _LATTICE_SNAPSHOT:
        return
    payload = dict(_LATTICE_SNAPSHOT)
    for size_key in list(payload):
        entry = payload[size_key]
        if not isinstance(entry, dict):
            continue
        reference = entry.get("reference_seconds")
        kernel = entry.get("kernel_seconds")
        if isinstance(reference, float) and isinstance(kernel, float):
            entry["speedup"] = reference / kernel
    payload["generated_utc"] = _utc_now_iso()
    LATTICE_SNAPSHOT_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


@pytest.fixture(scope="session", autouse=True)
def _write_runtime_snapshot():
    """Flush recorded runtime entries to ``BENCH_runtime.json``.

    Smoke runs (``BENCH_RUNTIME_SMOKE=1``, the CI smoke step) leave the
    committed snapshot untouched; set ``BENCH_RUNTIME_OUT`` to write
    the (smoke or full) snapshot somewhere else — the CI job points it
    at the artifact directory it uploads.
    """
    import os

    _RUNTIME_SNAPSHOT.clear()
    yield
    if not _RUNTIME_SNAPSHOT:
        return
    payload = dict(_RUNTIME_SNAPSHOT)
    payload["generated_utc"] = _utc_now_iso()
    override = os.environ.get("BENCH_RUNTIME_OUT")
    if override:
        path = pathlib.Path(override)
        path.parent.mkdir(parents=True, exist_ok=True)
    elif os.environ.get("BENCH_RUNTIME_SMOKE") == "1":
        return
    else:
        path = RUNTIME_SNAPSHOT_PATH
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


@pytest.fixture(scope="session", autouse=True)
def _write_parallel_snapshot():
    """Flush recorded sharding entries to ``BENCH_parallel.json``.

    Smoke runs (``BENCH_PARALLEL_SMOKE=1``, the CI smoke step) leave
    the committed snapshot untouched; ``BENCH_PARALLEL_OUT`` redirects
    the (smoke or full) snapshot elsewhere — the CI job points it at
    the artifact directory it uploads.
    """
    import os

    _PARALLEL_SNAPSHOT.clear()
    yield
    if not _PARALLEL_SNAPSHOT:
        return
    payload = dict(_PARALLEL_SNAPSHOT)
    for row_key in list(payload):
        entry = payload[row_key]
        if not isinstance(entry, dict):
            continue
        serial = entry.get("serial_seconds")
        sharded = entry.get("parallel_seconds")
        if isinstance(serial, float) and isinstance(sharded, float):
            entry["speedup"] = serial / sharded
    payload["generated_utc"] = _utc_now_iso()
    override = os.environ.get("BENCH_PARALLEL_OUT")
    if override:
        path = pathlib.Path(override)
        path.parent.mkdir(parents=True, exist_ok=True)
    elif os.environ.get("BENCH_PARALLEL_SMOKE") == "1":
        return
    else:
        path = PARALLEL_SNAPSHOT_PATH
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


@pytest.fixture(scope="session", autouse=True)
def _write_wire_snapshot():
    """Flush recorded wire entries to ``BENCH_wire.json``.

    Smoke runs (``BENCH_WIRE_SMOKE=1``, the CI smoke step) leave the
    committed snapshot untouched; ``BENCH_WIRE_OUT`` redirects the
    (smoke or full) snapshot elsewhere — the CI job points it at the
    artifact directory it uploads.
    """
    import os

    _WIRE_SNAPSHOT.clear()
    yield
    if not _WIRE_SNAPSHOT:
        return
    payload = dict(_WIRE_SNAPSHOT)
    payload["generated_utc"] = _utc_now_iso()
    override = os.environ.get("BENCH_WIRE_OUT")
    if override:
        path = pathlib.Path(override)
        path.parent.mkdir(parents=True, exist_ok=True)
    elif os.environ.get("BENCH_WIRE_SMOKE") == "1":
        return
    else:
        path = WIRE_SNAPSHOT_PATH
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def emit(text: str) -> None:
    """Queue one reproduction row for printing after the test."""
    _REPORT_BUFFER.append(text)


@pytest.fixture(autouse=True)
def _flush_reports(capsys):
    """Print each test's buffered report outside pytest's capture."""
    _REPORT_BUFFER.clear()
    yield
    if _REPORT_BUFFER:
        with capsys.disabled():
            print()
            for line in _REPORT_BUFFER:
                print(line)
    _REPORT_BUFFER.clear()


@pytest.fixture
def report_header(request):
    """Queue a banner naming the experiment."""

    def _header(title: str) -> None:
        emit("")
        emit("=" * 72)
        emit(title)
        emit("=" * 72)

    return _header
