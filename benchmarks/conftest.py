"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one of the paper's figures (or a
theorem's quantitative claim) and reports the reproduced rows with
``emit``.  Reports are buffered per test and flushed to the real stdout
in fixture teardown with capture suspended, so the reproduction tables
appear in plain ``pytest benchmarks/ --benchmark-only`` output — no
``-s`` needed.
"""

from __future__ import annotations

from typing import List

import pytest

_REPORT_BUFFER: List[str] = []


def emit(text: str) -> None:
    """Queue one reproduction row for printing after the test."""
    _REPORT_BUFFER.append(text)


@pytest.fixture(autouse=True)
def _flush_reports(capsys):
    """Print each test's buffered report outside pytest's capture."""
    _REPORT_BUFFER.clear()
    yield
    if _REPORT_BUFFER:
        with capsys.disabled():
            print()
            for line in _REPORT_BUFFER:
                print(line)
    _REPORT_BUFFER.clear()


@pytest.fixture
def report_header(request):
    """Queue a banner naming the experiment."""

    def _header(title: str) -> None:
        emit("")
        emit("=" * 72)
        emit(title)
        emit("=" * 72)

    return _header
