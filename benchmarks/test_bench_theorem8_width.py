"""Experiment thm8 — width(M, ↦) ≤ ⌊N/2⌋ and the realizer ablation.

Sweeps N and workload shape, reporting measured width against the bound,
and compares the realizer size obtained from the matching-optimal chain
partition (what the library uses) against the greedy longest-chain
partition (ablation from DESIGN.md §6).
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.analysis.report import render_table
from repro.core.chains import (
    greedy_chain_partition,
    minimum_chain_partition,
    width,
)
from repro.graphs.generators import complete_topology
from repro.order.message_order import message_poset
from repro.sim.workload import (
    adversarial_antichain_computation,
    random_computation,
)


def test_theorem8_width_sweep(benchmark, report_header):
    report_header("Theorem 8: width(M) vs floor(N/2) across N")

    def sweep():
        rows = []
        for n in (4, 6, 8, 10, 12):
            topology = complete_topology(n)
            random_width = width(
                message_poset(
                    random_computation(topology, 80, random.Random(n))
                )
            )
            adversarial_width = width(
                message_poset(
                    adversarial_antichain_computation(topology, 10)
                )
            )
            rows.append(
                [n, random_width, adversarial_width, n // 2]
            )
        return rows

    rows = benchmark(sweep)
    emit(
        render_table(
            ["N", "width(random)", "width(adversarial)", "floor(N/2)"],
            rows,
        )
    )
    for _, random_width, adversarial_width, bound in rows:
        assert random_width <= bound
        assert adversarial_width == bound  # the workload saturates it


def test_theorem8_chain_partition_ablation(benchmark, report_header):
    report_header(
        "Ablation: matching-optimal vs greedy chain partition "
        "(realizer / vector size)"
    )
    topology = complete_topology(10)
    computation = random_computation(topology, 120, random.Random(9))
    poset = message_poset(computation)

    optimal = benchmark(minimum_chain_partition, poset)
    greedy = greedy_chain_partition(poset)
    emit(
        render_table(
            ["partition", "chains (= vector size)"],
            [
                ["matching-optimal (library)", len(optimal)],
                ["greedy longest-chain (ablation)", len(greedy)],
            ],
        )
    )
    assert len(optimal) == width(poset)
    assert len(greedy) >= len(optimal)
