"""Experiment rsc — how restrictive is the synchronous assumption?

The paper's method applies to synchronous computations; the classical
characterization (its refs [1, 16]) says an asynchronous computation is
realizable synchronously (RSC) iff it is crown-free.  This bench
measures how quickly random asynchronous executions leave the RSC
class as message delivery gets more delayed — quantifying the scope of
the paper's assumption — and times the crown test + conversion.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.analysis.report import render_table
from repro.graphs.generators import complete_topology
from repro.sim.asynchronous import (
    is_rsc,
    random_async_computation,
    to_synchronous,
)

TRIALS = 40


def test_rsc_fraction_vs_delay(benchmark, report_header):
    report_header(
        "RSC boundary: fraction of random async executions that are "
        "synchronously realizable, by delivery delay"
    )
    topology = complete_topology(5)

    def sweep():
        rows = []
        for bias in (0.1, 0.3, 0.5, 0.7, 0.9):
            rsc_count = 0
            for seed in range(TRIALS):
                computation = random_async_computation(
                    topology, 12, random.Random(seed), delay_bias=bias
                )
                if is_rsc(computation):
                    rsc_count += 1
            rows.append([bias, f"{rsc_count / TRIALS:.2f}"])
        return rows

    rows = benchmark(sweep)
    emit(render_table(["delay bias", "fraction RSC"], rows))
    fractions = [float(row[1]) for row in rows]
    # More delay -> fewer RSC executions (weakly monotone trend).
    assert fractions[0] >= fractions[-1]


def test_rsc_conversion_cost(benchmark, report_header):
    report_header("RSC conversion: crown test + synchronous scheduling")
    topology = complete_topology(5)
    # delay_bias=0.05 delivers almost immediately: RSC by construction
    # with overwhelming probability; pick a seed that is.
    computation = None
    for seed in range(50):
        candidate = random_async_computation(
            topology, 60, random.Random(seed), delay_bias=0.05
        )
        if is_rsc(candidate):
            computation = candidate
            break
    assert computation is not None

    sync = benchmark(to_synchronous, computation)
    emit(
        f"async events={2 * len(computation)}  ->  "
        f"synchronous messages={len(sync)}"
    )
    assert len(sync) == len(computation)
