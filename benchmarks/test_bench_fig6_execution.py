"""Experiment fig6 — the sample execution of Figure 6.

Regenerates the highlighted timestamps (the P2→P3 message must receive
(1,1,1)) and the paper's remark that the offline algorithm needs only
2-dimensional vectors for this computation.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.report import render_table
from repro.clocks.offline import OfflineRealizerClock, offline_vector_size
from repro.clocks.online import OnlineEdgeClock
from repro.core.vector import VectorTimestamp
from repro.sim.paper_figures import figure6_computation
from repro.viz.timediagram import render_time_diagram


def test_fig6_online_execution(benchmark, report_header):
    report_header("Figure 6: sample online execution on K5")
    computation, decomposition = figure6_computation()
    clock = OnlineEdgeClock(decomposition)
    assignment = benchmark(clock.timestamp_computation, computation)

    emit(decomposition.describe())
    emit("")
    rows = [
        [
            message.name,
            f"{message.sender}->{message.receiver}",
            f"E{clock.group_of_message(message) + 1}",
            repr(assignment.of(message)),
        ]
        for message in computation.messages
    ]
    emit(render_table(["msg", "channel", "group", "timestamp"], rows))
    emit("")
    emit(render_time_diagram(computation))

    assert assignment.of_name("m3") == VectorTimestamp([1, 1, 1])


def test_fig6_offline_two_components(benchmark, report_header):
    report_header("Figure 6: offline algorithm uses 2-dimensional vectors")
    computation, _ = figure6_computation()
    clock = OfflineRealizerClock()
    assignment = benchmark(clock.timestamp_computation, computation)
    rows = [
        [message.name, repr(assignment.of(message))]
        for message in computation.messages
    ]
    emit(render_table(["msg", "offline timestamp"], rows))
    emit(f"width (vector size) = {clock.timestamp_size}  paper: 2")
    assert offline_vector_size(computation) == 2
