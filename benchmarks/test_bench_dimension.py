"""Experiment dim — width vs true dimension (Section 4 context).

The offline algorithm spends ``width(M)`` components; the information-
theoretic floor is the poset's *dimension*, which is NP-hard to compute
(Yannakakis) and can be strictly smaller than the width.  On tiny
computations we can brute-force the dimension and measure the gap the
offline algorithm leaves on the table — the price of polynomial-time,
online-friendly construction.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.analysis.report import render_table
from repro.core.chains import width
from repro.core.dimension import dimension
from repro.graphs.generators import complete_topology
from repro.order.message_order import message_poset
from repro.sim.workload import random_computation

TRIALS = 12
MESSAGES = 7  # brute-force dimension is exponential; keep posets tiny


def test_width_vs_dimension_gap(benchmark, report_header):
    report_header(
        "Width (offline vector size) vs exact dimension on tiny "
        "computations"
    )
    topology = complete_topology(6)

    def sweep():
        rows = []
        gaps = 0
        for seed in range(TRIALS):
            computation = random_computation(
                topology, MESSAGES, random.Random(seed)
            )
            poset = message_poset(computation)
            if len(poset) == 0:
                continue
            w = width(poset)
            d = dimension(poset)
            if d < w:
                gaps += 1
            rows.append([seed, len(poset), w, d])
        return rows, gaps

    rows, gaps = benchmark(sweep)
    emit(
        render_table(
            ["seed", "messages", "width (used)", "dimension (floor)"],
            rows,
        )
    )
    emit(f"computations where dimension < width: {gaps}/{len(rows)}")
    for _, _, w, d in rows:
        assert d <= w  # Dilworth: dim <= width, always
        assert d >= 1
