"""Experiment perf — timestamping and precedence-test costs.

Times, for online / offline / Fidge–Mattern / Lamport / direct
dependency:

* the cost of timestamping a full workload, and
* the cost of precedence queries over the resulting timestamps
  (vector comparison of size d vs size N vs graph walking).

The shape to observe: online piggybacks d-sized vectors and answers
queries in O(d); FM pays N; Lamport is cheapest but incomplete; the
Fowler–Zwaenepoel tracer pays per *query* what the others pay per
*message*.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import emit
from repro.clocks.dependency import DependencyTracer, DirectDependencyRecord
from repro.clocks.fm import FMMessageClock
from repro.clocks.lamport import LamportMessageClock
from repro.clocks.offline import OfflineRealizerClock
from repro.clocks.online import OnlineEdgeClock
from repro.graphs.decomposition import decompose
from repro.graphs.generators import client_server_topology
from repro.sim.workload import random_computation

TOPOLOGY = client_server_topology(3, 27)  # N = 30, d = 3
MESSAGES = 400


def _workload():
    return random_computation(TOPOLOGY, MESSAGES, random.Random(11))


def _clock(name: str):
    if name == "online":
        return OnlineEdgeClock(decompose(TOPOLOGY))
    if name == "offline":
        return OfflineRealizerClock()
    if name == "fm":
        return FMMessageClock.for_topology(TOPOLOGY)
    return LamportMessageClock.for_topology(TOPOLOGY)


STAMPERS = ["online", "offline", "fm", "lamport"]


@pytest.mark.parametrize("name", STAMPERS, ids=STAMPERS)
def test_timestamping_throughput(benchmark, report_header, name):
    computation = _workload()
    clock = _clock(name)
    benchmark(clock.timestamp_computation, computation)
    report_header(
        f"Throughput: {name} stamping {MESSAGES} messages on N=30 "
        f"client-server"
    )
    emit(f"vector size = {clock.timestamp_size}")


def test_threaded_rendezvous_throughput(benchmark, report_header):
    """Wall-clock cost of *real* rendezvous including the piggybacking:
    a ping-pong pair exchanging 200 synchronous messages on threads."""
    from repro.graphs.generators import path_topology
    from repro.sim.runtime import ScriptRunner, receive, send

    decomposition = decompose(path_topology(2))
    rounds = 100
    scripts = {
        "P1": [send("P2"), receive("P2")] * rounds,
        "P2": [receive("P1"), send("P1")] * rounds,
    }

    def run_once():
        return ScriptRunner(decomposition, scripts, timeout=30.0).run()

    transport = benchmark(run_once)
    report_header(
        "Threaded runtime: blocking-send rendezvous throughput"
    )
    emit(f"messages per run: {len(transport.log)}")
    assert len(transport.log) == 2 * rounds


@pytest.mark.parametrize(
    "name", ["online", "fm", "dependency"], ids=["online", "fm", "dependency"]
)
def test_precedence_query_cost(benchmark, report_header, name):
    computation = _workload()
    messages = computation.messages
    pairs = [
        (messages[i], messages[j])
        for i in range(0, MESSAGES, 13)
        for j in range(0, MESSAGES, 17)
        if i != j
    ]

    if name == "dependency":
        tracer = DependencyTracer(DirectDependencyRecord(computation))

        def query_all():
            return sum(1 for a, b in pairs if tracer.precedes(a, b))

    else:
        clock = _clock(name)
        assignment = clock.timestamp_computation(computation)

        def query_all():
            return sum(
                1
                for a, b in pairs
                if clock.precedes(assignment.of(a), assignment.of(b))
            )

    ordered = benchmark(query_all)
    report_header(
        f"Precedence queries ({len(pairs)} pairs) via {name}"
    )
    emit(f"pairs reported ordered: {ordered}")
    assert 0 <= ordered <= len(pairs)
