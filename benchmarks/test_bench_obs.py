"""Experiment obs — what the observability layer costs.

Measures online timestamping throughput (messages/sec) three ways:

* instrumentation **off** (the shipping default — hooks are a single
  ``None`` test);
* instrumentation **on** with metrics only;
* instrumentation **on** with metrics *and* per-computation spans.

The off/on pair is written to ``BENCH_obs.json`` so the perf
trajectory of the hook path is tracked across runs.  The claim to
verify: disabling observability costs (close to) nothing — the
acceptance bar for the obs PR is < 2% regression vs. the
uninstrumented seed.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.conftest import emit, record_perf
from repro.clocks.online import OnlineEdgeClock
from repro.graphs.decomposition import decompose
from repro.graphs.generators import client_server_topology
from repro.obs import instrument
from repro.obs.metrics import MetricsRegistry
from repro.sim.workload import random_computation

TOPOLOGY = client_server_topology(3, 27)  # N = 30, d = 3
MESSAGES = 400
REPEATS = 5


def _manual_best(fn) -> float:
    """Best-of-``REPEATS`` fallback when pytest-benchmark is disabled."""
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.mark.parametrize("mode", ["off", "on"], ids=["obs-off", "obs-on"])
def test_obs_overhead_snapshot(benchmark, report_header, mode):
    computation = random_computation(TOPOLOGY, MESSAGES, random.Random(11))
    instrument.disable()
    clock = OnlineEdgeClock(decompose(TOPOLOGY))
    if mode == "on":
        instrument.enable(MetricsRegistry())
    try:
        benchmark(clock.timestamp_computation, computation)
        stats = getattr(benchmark, "stats", None)
        if stats is not None and getattr(stats, "stats", None) is not None:
            seconds = stats.stats.min
        else:  # --benchmark-disable: time it by hand
            seconds = _manual_best(
                lambda: clock.timestamp_computation(computation)
            )
    finally:
        instrument.disable()

    rate = MESSAGES / seconds
    record_perf(
        f"online_stamping_{mode}",
        {
            "workload": "client-server:3x27",
            "messages": MESSAGES,
            "seconds": seconds,
            "messages_per_sec": rate,
        },
    )
    report_header(
        f"Observability {mode}: online stamping of {MESSAGES} messages"
    )
    emit(f"instrumentation {mode}: {rate:,.0f} msg/s")


def test_obs_enabled_collects_while_benchmarking(report_header):
    """Enabled-path sanity: the measured run actually recorded data."""
    registry = MetricsRegistry()
    computation = random_computation(TOPOLOGY, 50, random.Random(3))
    with instrument.enabled_session(registry):
        clock = OnlineEdgeClock(decompose(TOPOLOGY))
        clock.timestamp_computation(computation)
        spans = instrument.get_tracer().finished()
    snapshot = registry.snapshot()
    assert snapshot["messages_timestamped_total"]["value"] == 50
    assert snapshot["vector_component_count"]["value"] == 3
    assert any(s.name == "online.timestamp_computation" for s in spans)
    report_header("Observability enabled-path sanity")
    emit(
        "metrics recorded: "
        f"{snapshot['messages_timestamped_total']['value']} messages, "
        f"{len(spans)} span(s)"
    )


def _synthetic_flight_record(messages: int, processes: int = 6):
    """A flight record shaped exactly like the transport's, without
    paying for threads: six events per rendezvous."""
    from repro.obs import flightrec

    recorder = flightrec.FlightRecorder(capacity=messages * 6 + 8)
    names = [f"P{i + 1}" for i in range(processes)]
    for k in range(messages):
        sender = names[k % processes]
        receiver = names[(k + 1) % processes]
        recorder.record(flightrec.SEND_OFFER, sender, peer=receiver)
        recorder.record(
            flightrec.BLOCK_START, sender, peer=receiver, op="send"
        )
        recorder.record(
            flightrec.BLOCK_START, receiver, peer=sender, op="receive"
        )
        recorder.record(
            flightrec.BLOCK_END,
            receiver,
            peer=sender,
            op="receive",
            status="matched",
            seconds=0.0001,
        )
        recorder.record(
            flightrec.RENDEZVOUS,
            receiver,
            peer=sender,
            commit_order=k,
            payload=None,
        )
        recorder.record(
            flightrec.BLOCK_END,
            sender,
            peer=receiver,
            op="send",
            status="matched",
            seconds=0.0001,
        )
    return recorder.events()


def test_timeline_export_throughput(report_header):
    """Trace-export throughput: flight events serialized per second
    into the Perfetto trace-event JSON."""
    from repro.obs.timeline import build_timeline, timeline_json

    events = _synthetic_flight_record(2000)
    seconds = _manual_best(lambda: timeline_json(events))
    rate = len(events) / seconds
    document = build_timeline(events)
    record_perf(
        "timeline_export",
        {
            "flight_events": len(events),
            "trace_events": len(document["traceEvents"]),
            "seconds": seconds,
            "events_per_sec": rate,
        },
    )
    report_header(
        f"Timeline export: {len(events)} flight events -> "
        f"{len(document['traceEvents'])} trace events"
    )
    emit(f"export throughput: {rate:,.0f} flight events/s")


def test_live_telemetry_overhead(report_header):
    """What the telemetry plane costs the multiprocess runtime.

    Off/on load runs are *interleaved* (off, on, off, on, ...) so
    machine drift during the measurement hits both modes equally, and
    the ratio is taken over the per-mode minima — the least
    noise-contaminated estimator of the structural cost on a shared
    box.  The ``telemetry_overhead_ratio`` row is hard-gated at 5%
    over a 1.0 baseline — streaming health monitoring must stay
    effectively free for the data path.
    """
    from repro.obs.live import TelemetryConfig
    from repro.sim.distributed import run_load

    servers, clients, messages = 1, 4, 100
    repeats = 10

    def one_traffic_seconds(telemetry) -> float:
        transport = run_load(
            server_count=servers,
            client_count=clients,
            messages_per_client=messages,
            timeout=60.0,
            telemetry=telemetry,
        )
        stats = transport.stats
        assert stats.timeouts == 0
        assert stats.messages == clients * messages
        return stats.traffic_seconds

    off_s = float("inf")
    on_s = float("inf")
    for _ in range(repeats):
        off_s = min(off_s, one_traffic_seconds(None))
        on_s = min(on_s, one_traffic_seconds(TelemetryConfig()))
    ratio = on_s / off_s
    total = clients * messages
    record_perf(
        "live_telemetry",
        {
            "workload": f"load:{servers}x{clients}x{messages}",
            "messages": total,
            "off_seconds": off_s,
            "on_seconds": on_s,
            "off_messages_per_sec": total / off_s,
            "on_messages_per_sec": total / on_s,
            "telemetry_overhead_ratio": ratio,
        },
    )
    report_header(
        f"Live telemetry plane over {total} messages "
        f"({servers} server(s), {clients} clients)"
    )
    emit(
        f"telemetry off: {total / off_s:,.0f} msg/s; "
        f"on: {total / on_s:,.0f} msg/s ({ratio:.3f}x)"
    )


def test_quantile_sketch_overhead(report_header):
    """P² sketch cost per observation vs ``Histogram.observe`` — the
    sketch buys p50/p95/p99 for a small constant factor."""
    from repro.obs.metrics import DURATION_BUCKETS, Histogram, QuantileSketch

    rng = random.Random(29)
    samples = [rng.random() for _ in range(20_000)]

    def run_histogram():
        histogram = Histogram("h", buckets=DURATION_BUCKETS)
        for value in samples:
            histogram.observe(value)

    def run_sketch():
        sketch = QuantileSketch("s")
        for value in samples:
            sketch.observe(value)

    histogram_s = _manual_best(run_histogram)
    sketch_s = _manual_best(run_sketch)
    ratio = sketch_s / histogram_s
    record_perf(
        "quantile_sketch",
        {
            "observations": len(samples),
            "histogram_ns_per_observe": histogram_s / len(samples) * 1e9,
            "sketch_ns_per_observe": sketch_s / len(samples) * 1e9,
            "sketch_vs_histogram_ratio": ratio,
        },
    )
    report_header(
        f"Quantile sketch overhead over {len(samples)} observations"
    )
    emit(
        f"histogram: {histogram_s / len(samples) * 1e9:,.0f} ns/observe; "
        f"P2 sketch: {sketch_s / len(samples) * 1e9:,.0f} ns/observe "
        f"({ratio:.2f}x)"
    )
