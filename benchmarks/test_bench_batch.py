"""Experiment batch — slow vs. fast online stamping throughput.

Measures the 1k-message scalability workload two ways:

* **handshake path** — the reference Figure 5 implementation: one
  ``OnlineProcessClock`` per process, three handshake calls and two
  fresh immutable vectors per message;
* **batch path** — ``repro.core.fastpath.stamp_batch``: in-place
  ``MutableVector`` workspaces, pre-resolved edge-group tables, one
  immutable vector per message.

The pair is written to ``BENCH_batch.json`` (see
``docs/performance.md`` for the methodology).  The acceptance bar for
this PR: the batch path is at least 2x the handshake path's
messages/sec while producing byte-identical timestamps and identical
``_obs`` counter values.  With ``BENCH_BATCH_SMOKE=1`` (the CI smoke
step) everything runs one round at reduced size and the committed
snapshot is left untouched; ``BENCH_BATCH_OUT`` redirects the snapshot
to another path (the CI artifact directory).
"""

from __future__ import annotations

import os
import random
import time

import pytest

from benchmarks.conftest import emit, record_batch_perf
from repro.clocks.online import OnlineEdgeClock
from repro.graphs.decomposition import decompose
from repro.graphs.generators import client_server_topology
from repro.obs import instrument
from repro.obs.metrics import MetricsRegistry
from repro.sim.workload import random_computation

SMOKE = os.environ.get("BENCH_BATCH_SMOKE") == "1"

TOPOLOGY = client_server_topology(3, 27)  # N = 30, d = 3
MESSAGES = 300 if SMOKE else 1_000
REPEATS = 1 if SMOKE else 5
REQUIRED_SPEEDUP = 2.0


def _workload():
    return random_computation(TOPOLOGY, MESSAGES, random.Random(11))


def _manual_best(fn) -> float:
    """Best-of-``REPEATS`` wall-clock timing (instrumentation off)."""
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_batch_equals_handshake_exactly(report_header):
    """Byte-identical timestamps and identical counters on both paths."""
    computation = _workload()
    clock = OnlineEdgeClock(decompose(TOPOLOGY))

    with instrument.enabled_session(MetricsRegistry()) as bundle:
        slow = clock.timestamp_computation_handshake(computation)
        slow_counters = bundle.registry.snapshot()
    with instrument.enabled_session(MetricsRegistry()) as bundle:
        fast = clock.timestamp_computation(computation)
        fast_counters = bundle.registry.snapshot()

    for message in computation.messages:
        assert fast.of(message).components == slow.of(message).components
    assert fast_counters == slow_counters

    report_header("Batch fast path: equivalence on the 1k workload")
    emit(
        f"{MESSAGES} messages: timestamps and all "
        f"{len(fast_counters)} metric snapshots identical"
    )


def test_batch_speedup_snapshot(report_header):
    """The headline number: batch vs. handshake messages/sec."""
    computation = _workload()
    clock = OnlineEdgeClock(decompose(TOPOLOGY))
    instrument.disable()

    slow_seconds = _manual_best(
        lambda: clock.timestamp_computation_handshake(computation)
    )
    fast_seconds = _manual_best(
        lambda: clock.timestamp_computation(computation)
    )
    speedup = slow_seconds / fast_seconds

    record_batch_perf(
        "handshake_path",
        {
            "workload": "client-server:3x27",
            "messages": MESSAGES,
            "seconds": slow_seconds,
            "messages_per_sec": MESSAGES / slow_seconds,
        },
    )
    record_batch_perf(
        "batch_path",
        {
            "workload": "client-server:3x27",
            "messages": MESSAGES,
            "seconds": fast_seconds,
            "messages_per_sec": MESSAGES / fast_seconds,
        },
    )
    report_header(
        f"Batch fast path: stamping throughput, {MESSAGES} messages"
    )
    emit(f"handshake path: {MESSAGES / slow_seconds:,.0f} msg/s")
    emit(f"batch path:     {MESSAGES / fast_seconds:,.0f} msg/s")
    emit(f"speedup:        {speedup:.2f}x (required >= {REQUIRED_SPEEDUP}x)")
    assert speedup >= REQUIRED_SPEEDUP


@pytest.mark.parametrize(
    "path", ["handshake", "batch"], ids=["handshake-path", "batch-path"]
)
def test_batch_stamping_benchmark(benchmark, path):
    """pytest-benchmark timings for both paths (``make bench``)."""
    computation = _workload()
    clock = OnlineEdgeClock(decompose(TOPOLOGY))
    instrument.disable()
    target = (
        clock.timestamp_computation_handshake
        if path == "handshake"
        else clock.timestamp_computation
    )
    assignment = benchmark(target, computation)
    assert len(assignment) == MESSAGES
