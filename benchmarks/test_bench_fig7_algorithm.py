"""Experiment fig7 — runtime of the Figure 7 decomposition algorithm.

The paper states O(|V||E|) complexity; this bench measures the wall
time over growing random graphs so the growth trend is visible, and
verifies the output sizes stay within the proven bounds.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import emit
from repro.graphs.decomposition import paper_decomposition_algorithm
from repro.graphs.generators import random_connected

SIZES = [20, 40, 80]


@pytest.mark.parametrize("n", SIZES, ids=[f"n={n}" for n in SIZES])
def test_fig7_runtime_scaling(benchmark, report_header, n):
    graph = random_connected(n, n, random.Random(42))
    decomposition, _ = benchmark(paper_decomposition_algorithm, graph)
    report_header(f"Figure 7 algorithm on |V|={n}, |E|={graph.edge_count()}")
    emit(
        f"groups={decomposition.size} "
        f"(stars={decomposition.star_count()}, "
        f"triangles={decomposition.triangle_count()})"
    )
    assert decomposition.size <= max(1, n - 2)
