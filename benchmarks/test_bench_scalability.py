"""Experiment scale — the headline claim: timestamp size d ≪ N.

For each topology family the paper discusses, sweep the process count
and print the online vector size next to Fidge–Mattern's N.  The shape
to observe: star/triangle stay at 1, client–server stays at the server
count, trees stay at the hub count, and only the complete graph tracks
N (at N−2).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.overhead import sweep_topologies
from repro.analysis.report import render_table
from repro.graphs.generators import (
    client_server_topology,
    complete_topology,
    star_topology,
    tree_topology,
)


def test_scalability_sweep(benchmark, report_header):
    report_header(
        "Scalability: online vector size d vs Fidge-Mattern's N"
    )
    from repro.graphs.generators import federated_topology

    families = {
        "star": [star_topology(n - 1) for n in (4, 8, 16, 32)],
        "tree(3 hubs)": [
            tree_topology(3, leaves) for leaves in (1, 3, 9, 19)
        ],
        "client-server(2S)": [
            client_server_topology(2, clients)
            for clients in (2, 6, 14, 30)
        ],
        "federated(3x1S)": [
            federated_topology(3, clients) for clients in (1, 3, 7, 15)
        ],
        "complete": [complete_topology(n) for n in (4, 8, 16, 32)],
    }
    rows = benchmark(sweep_topologies, families)
    emit(
        render_table(
            ["topology", "N", "d (online)", "N (FM)", "saving"],
            [
                [
                    row.label,
                    row.process_count,
                    row.online_size,
                    row.fm_size,
                    f"{row.saving_factor:.1f}x",
                ]
                for row in rows
            ],
        )
    )
    by_family = {}
    for row in rows:
        by_family.setdefault(row.label.split("/")[0], []).append(row)
    # Constant-size families stay flat while N quadruples-plus.
    for family in (
        "star",
        "tree(3 hubs)",
        "client-server(2S)",
        "federated(3x1S)",
    ):
        sizes = {row.online_size for row in by_family[family]}
        assert len(sizes) == 1, f"{family} should have constant d"
    # The complete graph is the worst case: d = N - 2.
    for row in by_family["complete"]:
        assert row.online_size == row.process_count - 2
