"""Experiment batch — the piggyback wire-format shootout.

Streams a 10^6-message federated workload (independent client/server
clusters, the sharded engine's reference shape — ~100 edge groups
after decomposition but each channel only ever sees its own cluster's
slice of them) through ``stamp_batch_wire`` in each of the three wire
formats and reports, per format:

* **bytes/message** on the wire — offer leg + acknowledgement leg,
  exactly the bytes a socket runtime would carry;
* **stamp+encode throughput** — fused Figure 5 merge plus the codec's
  encode on both legs;
* **compare throughput** — timestamp dominance checks/sec on the
  produced vectors (the consumer side of the trade).

The formats:

``full``
    Every frame is the whole vector as LEB128 varints — the historical
    wire encoding, byte-identical to ``repro.sim.wire.encode_vector``.

``delta``
    Per-channel differential frames (changed components only) with
    periodic full-vector resyncs — the Singhal–Kshemkalyani idea
    generalized from process indices to edge-group components.

``bounded:K``
    K-entry lossy frames: the K hottest components exact, the rest
    saturated to zero (Drummond–Barbosa bounded clocks).  The measured
    false-concurrency rate (``repro.obs.audit``) is reported alongside.

A correctness pin runs before any timing: the delta path must produce
**byte-identical** timestamps to the plain ``stamp_batch`` fused
update with every frame decode-verified.  A separate run drives the
real 120-node socket runtime (``run_load``) in full and delta formats
and asserts the >= 2x bytes-on-the-wire reduction the delta codec
exists for.

Results land in ``BENCH_wire.json`` (``make bench-wire``); with
``BENCH_WIRE_SMOKE=1`` (the CI smoke step) everything runs at tiny
sizes and the committed snapshot is left untouched unless
``BENCH_WIRE_OUT`` points somewhere else.
"""

from __future__ import annotations

import os
import random
import time

from benchmarks.conftest import emit, record_wire_perf
from repro.core.fastpath import stamp_batch, stamp_batch_wire
from repro.core.vector import dominates
from repro.graphs.decomposition import decompose
from repro.graphs.generators import ring_topology
from repro.obs.audit import Auditor
from repro.sim.distributed import run_load
from repro.sim.workload import multi_cluster_computation, random_computation

SMOKE = os.environ.get("BENCH_WIRE_SMOKE") == "1"

#: The shootout topology: independent client/server clusters (the
#: sharded engine's reference workload).  The decomposition is wide —
#: one group per server hub across every cluster — but any one channel
#: only ever moves its own cluster's components, so a full vector
#: hauls ~``CLUSTERS * SERVERS`` varints per frame while the
#: differential codec sends the handful that changed.  This is the
#: federated regime the delta format exists for; the ring-gossip
#: steady state (every component advancing between every pair of
#: sends) is its worst case and stays with the ``full`` format.
CLUSTERS = 2 if SMOKE else 12
SERVERS = 4 if SMOKE else 8
CLIENTS = 6 if SMOKE else 22

#: The lossiness topology: a 120-process ring — 60 edge groups, all of
#: them eventually hot in every vector, so bounded-K genuinely loses
#: information there.
RING_SIZE = 16 if SMOKE else 120

#: Total messages streamed through each format.
MESSAGE_TARGET = 20_000 if SMOKE else 1_000_000

#: K for the bounded-entry row.
BOUND_K = 8

FORMATS = ("full", "delta", f"bounded:{BOUND_K}")

#: Dominance checks timed for the compare-throughput column.
COMPARE_OPS = 50_000 if SMOKE else 500_000

#: Shape of the socket-runtime reduction run (servers, clients,
#: messages per client) — the 120-node acceptance workload.
LOAD_SHAPE = (2, 10, 3) if SMOKE else (4, 116, 3)

LOAD_TIMEOUT = 30.0 if SMOKE else 90.0


def _cluster_topology():
    """The shootout topology without materializing any messages."""
    return multi_cluster_computation(
        CLUSTERS,
        1,
        random.Random(0),
        server_count=SERVERS,
        client_count=CLIENTS,
    ).topology


def _cluster_pairs(topology, message_target, seed):
    """Stream uniformly random ``(sender, receiver)`` cluster sends.

    Same distribution as ``multi_cluster_computation`` — a random
    client/server channel inside a random cluster, random direction —
    but as a lazy generator, so 10^6 messages never materialize at
    once.
    """
    by_cluster = {}
    for edge in topology.edges:
        u, v = edge.endpoints
        by_cluster.setdefault(u.split("_", 1)[0], []).append((u, v))
    cells = list(by_cluster.values())
    rng = random.Random(seed)
    for _ in range(message_target):
        channels = cells[rng.randrange(len(cells))]
        u, v = channels[rng.randrange(len(channels))]
        if rng.random() < 0.5:
            u, v = v, u
        yield (u, v)


def test_delta_path_is_byte_identical_to_batch():
    """Correctness pin before any timing.

    The delta codec's committed timestamps must equal the plain fused
    update's, and ``verify=True`` decode-checks every frame (offer and
    ack) against the encoder-side vector — including across resync
    boundaries (a tiny resync interval forces several).
    """
    topology = ring_topology(12)
    decomposition = decompose(topology)
    computation = random_computation(topology, 400, random.Random(7))
    expected = stamp_batch(computation, decomposition)
    actual, stats = stamp_batch_wire(
        computation,
        decomposition,
        wire_format="delta",
        resync_interval=5,
        verify=True,
    )
    assert actual == expected
    assert stats.messages == 400
    assert stats.resyncs > 0  # interval 5 must have forced resyncs


def test_wire_format_shootout(report_header):
    """The 10^6-message shootout: bytes/message and throughput."""
    topology = _cluster_topology()
    decomposition = decompose(topology)
    report_header(
        f"Wire-format shootout: {MESSAGE_TARGET:,} messages over "
        f"{CLUSTERS} client/server clusters "
        f"({topology.vertex_count()} processes)"
    )
    emit(
        f"  {decomposition.size} edge groups -> full vector is "
        f">= {decomposition.size} varint bytes per frame"
    )

    bytes_by_format = {}
    for wire_format in FORMATS:
        start = time.perf_counter()
        _, stats = stamp_batch_wire(
            _cluster_pairs(topology, MESSAGE_TARGET, seed=23),
            decomposition,
            wire_format=wire_format,
            collect_timestamps=False,
        )
        elapsed = time.perf_counter() - start
        assert stats.messages == MESSAGE_TARGET
        stamp_encode_per_sec = stats.messages / elapsed

        # Compare throughput: dominance checks over timestamps this
        # format actually commits (a short prefix of the same stream).
        prefix, _ = stamp_batch_wire(
            _cluster_pairs(
                topology, min(4096, MESSAGE_TARGET), seed=23
            ),
            decomposition,
            wire_format=wire_format,
        )
        pair_count = len(prefix) - 1
        checks = 0
        compare_start = time.perf_counter()
        while checks < COMPARE_OPS:
            index = checks % pair_count
            dominates(prefix[index + 1], prefix[index])
            checks += 1
        compare_elapsed = time.perf_counter() - compare_start
        compare_per_sec = checks / compare_elapsed

        key = wire_format.replace(":", "_")
        record_wire_perf(
            key,
            {
                "wire_format": wire_format,
                "messages": stats.messages,
                "payload_bytes": stats.payload_bytes,
                "bytes_per_message": stats.bytes_per_message,
                "resyncs": stats.resyncs,
                "stamp_encode_per_sec": stamp_encode_per_sec,
                "compare_per_sec": compare_per_sec,
            },
        )
        bytes_by_format[wire_format] = stats.bytes_per_message
        emit(
            f"  {wire_format:<12} {stats.bytes_per_message:8.3f} B/msg"
            f"  {stamp_encode_per_sec:12,.0f} stamp+encode/s"
            f"  {compare_per_sec:12,.0f} compare/s"
            f"  resyncs={stats.resyncs}"
        )
    # The full-size federated shape must show the delta win the codec
    # exists for; the tiny smoke shape only has to stay in the race.
    if not SMOKE:
        assert bytes_by_format["delta"] < bytes_by_format["full"] / 2


def test_bounded_k_false_concurrency(report_header):
    """Measure (not assume) what bounded-K loses.

    Bounded timestamps under-approximate history by construction;
    ``repro.obs.audit`` quantifies the damage as a false-concurrency
    rate against the ground-truth synchronous order.
    """
    report_header(f"Bounded-K lossiness (K={BOUND_K})")
    topology = ring_topology(RING_SIZE)
    decomposition = decompose(topology)
    message_count = 2_000 if SMOKE else 10_000
    computation = random_computation(
        topology, message_count, random.Random(11)
    )
    timestamps, _ = stamp_batch_wire(
        computation, decomposition, wire_format=f"bounded:{BOUND_K}"
    )
    audit = Auditor().measure_false_concurrency(computation, timestamps)
    record_wire_perf(
        "bounded_audit",
        {
            "bound_k": BOUND_K,
            "pairs_checked": audit["pairs_checked"],
            "false_concurrency_rate": audit["false_concurrency_rate"],
            "false_order_rate": audit["false_order_rate"],
        },
    )
    emit(
        f"  {int(audit['pairs_checked']):,} pairs audited: "
        f"false_concurrency_rate="
        f"{audit['false_concurrency_rate']:.4f} "
        f"false_order_rate={audit['false_order_rate']:.4f}"
    )
    assert 0.0 <= audit["false_concurrency_rate"] <= 1.0


def test_distributed_load_delta_reduction(report_header):
    """The acceptance run: >= 2x fewer piggyback bytes on the wire.

    Drives the real multiprocess socket runtime (one OS process per
    node) through the same client-server load in full and delta
    formats; the coordinator measures the actual piggyback bytes it
    relays, so the ratio is wire truth, not an estimate.
    """
    servers, clients, messages = LOAD_SHAPE
    report_header(
        f"Socket-runtime reduction: {servers + clients} node "
        f"processes, {servers}x{clients} load"
    )
    bytes_by_format = {}
    for wire_format in ("full", "delta"):
        transport = run_load(
            server_count=servers,
            client_count=clients,
            messages_per_client=messages,
            timeout=LOAD_TIMEOUT,
            wire_format=wire_format,
        )
        stats = transport.stats
        assert stats.timeouts == 0
        bytes_by_format[wire_format] = stats.piggyback_bytes
        record_wire_perf(
            f"load_{wire_format}",
            {
                "nodes": stats.nodes,
                "messages": stats.messages,
                "piggyback_bytes": stats.piggyback_bytes,
                "piggyback_bytes_per_message": (
                    stats.piggyback_bytes_per_message
                ),
                "delta_resync_total": stats.delta_resync_total,
            },
        )
        emit(
            f"  {wire_format:<6} {stats.piggyback_bytes:8,} piggyback "
            f"bytes ({stats.piggyback_bytes_per_message:.3f} B/msg, "
            f"{stats.nodes} nodes)"
        )
    reduction = bytes_by_format["full"] / bytes_by_format["delta"]
    record_wire_perf("load_reduction", {"wire_reduction_speedup": reduction})
    emit(f"  delta reduction: {reduction:.2f}x fewer bytes on the wire")
    # The full-size workload must clear the 2x acceptance bar; the CI
    # smoke shape is too small to amortize and only has to win at all.
    assert reduction >= (1.1 if SMOKE else 2.0)
