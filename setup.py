"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` on this offline box needs the
legacy ``setup.py develop`` path (modern editable installs require
``bdist_wheel``).  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
